#include "trace/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

#include "sim/assert.hpp"

namespace slm::trace {

const char* to_string(RecordKind k) {
    switch (k) {
        case RecordKind::TaskState: return "task_state";
        case RecordKind::ContextSwitch: return "context_switch";
        case RecordKind::Irq: return "irq";
        case RecordKind::ExecBegin: return "exec_begin";
        case RecordKind::ExecEnd: return "exec_end";
        case RecordKind::ChannelOp: return "channel_op";
        case RecordKind::Marker: return "marker";
    }
    return "?";
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void TraceRecorder::record(Record r) {
    // Ordering contract (see trace.hpp): nondecreasing timestamps. Checked in
    // debug builds only — the hot path stays branch-free under NDEBUG.
    assert((records_.empty() || r.t >= records_.back().t) &&
           "TraceRecorder::record: timestamps must be nondecreasing");
    records_.push_back(std::move(r));
}

void TraceRecorder::exec_begin(SimTime t, std::string_view cpu, std::string_view actor) {
    record({t, RecordKind::ExecBegin, std::string(cpu), std::string(actor), {}});
}

void TraceRecorder::exec_end(SimTime t, std::string_view cpu, std::string_view actor) {
    record({t, RecordKind::ExecEnd, std::string(cpu), std::string(actor), {}});
}

void TraceRecorder::task_state(SimTime t, std::string_view cpu, std::string_view actor,
                               std::string_view state) {
    record({t, RecordKind::TaskState, std::string(cpu), std::string(actor),
            std::string(state)});
}

void TraceRecorder::context_switch(SimTime t, std::string_view cpu, std::string_view to,
                                   std::string_view from) {
    record({t, RecordKind::ContextSwitch, std::string(cpu), std::string(to),
            std::string(from)});
}

void TraceRecorder::irq(SimTime t, std::string_view cpu, std::string_view irq_name) {
    record({t, RecordKind::Irq, std::string(cpu), std::string(irq_name), {}});
}

void TraceRecorder::channel_op(SimTime t, std::string_view channel, std::string_view op) {
    record({t, RecordKind::ChannelOp, {}, std::string(channel), std::string(op)});
}

void TraceRecorder::marker(SimTime t, std::string_view text) {
    record({t, RecordKind::Marker, {}, {}, std::string(text)});
}

void TraceRecorder::clear() {
    records_.clear();
}

std::size_t TraceRecorder::count(RecordKind k) const {
    return static_cast<std::size_t>(
        std::count_if(records_.begin(), records_.end(),
                      [k](const Record& r) { return r.kind == k; }));
}

std::size_t TraceRecorder::context_switches(const std::string& cpu) const {
    return static_cast<std::size_t>(
        std::count_if(records_.begin(), records_.end(), [&](const Record& r) {
            return r.kind == RecordKind::ContextSwitch && (cpu.empty() || r.cpu == cpu);
        }));
}

namespace {

bool enters_running(const Record& r, const std::string& actor) {
    return (r.kind == RecordKind::ExecBegin && r.actor == actor) ||
           (r.kind == RecordKind::TaskState && r.actor == actor && r.detail == "Running");
}

bool leaves_running(const Record& r, const std::string& actor) {
    return (r.kind == RecordKind::ExecEnd && r.actor == actor) ||
           (r.kind == RecordKind::TaskState && r.actor == actor && r.detail != "Running");
}

}  // namespace

std::vector<Interval> TraceRecorder::intervals(const std::string& actor) const {
    std::vector<Interval> out;
    bool open = false;
    SimTime begin;
    for (const Record& r : records_) {
        if (!open && enters_running(r, actor)) {
            open = true;
            begin = r.t;
        } else if (open && leaves_running(r, actor)) {
            open = false;
            if (r.t > begin) {
                out.push_back({begin, r.t, actor});
            }
        }
    }
    if (open && !records_.empty() && records_.back().t > begin) {
        out.push_back({begin, records_.back().t, actor});
    }
    return out;
}

std::vector<std::string> TraceRecorder::actors() const {
    std::vector<std::string> out;
    for (const Record& r : records_) {
        if (r.kind != RecordKind::ExecBegin && r.kind != RecordKind::ExecEnd &&
            r.kind != RecordKind::TaskState) {
            continue;
        }
        if (std::find(out.begin(), out.end(), r.actor) == out.end()) {
            out.push_back(r.actor);
        }
    }
    return out;
}

SimTime TraceRecorder::busy_time(const std::string& actor) const {
    SimTime total;
    for (const Interval& iv : intervals(actor)) {
        total += iv.end - iv.begin;
    }
    return total;
}

bool TraceRecorder::has_concurrent_execution(const std::string& cpu) const {
    // Gather intervals of all actors that have records on this cpu and check
    // pairwise overlap after sorting by start time.
    std::vector<Interval> all;
    for (const std::string& a : actors()) {
        // Does this actor appear on the requested cpu?
        const bool on_cpu = std::any_of(records_.begin(), records_.end(), [&](const Record& r) {
            return r.actor == a && r.cpu == cpu &&
                   (r.kind == RecordKind::ExecBegin || r.kind == RecordKind::TaskState);
        });
        if (!on_cpu) {
            continue;
        }
        const auto ivs = intervals(a);
        all.insert(all.end(), ivs.begin(), ivs.end());
    }
    std::sort(all.begin(), all.end(),
              [](const Interval& x, const Interval& y) { return x.begin < y.begin; });
    for (std::size_t i = 1; i < all.size(); ++i) {
        if (all[i].begin < all[i - 1].end) {
            return true;
        }
    }
    return false;
}

std::vector<SimTime> TraceRecorder::irq_times(const std::string& name) const {
    std::vector<SimTime> out;
    for (const Record& r : records_) {
        if (r.kind == RecordKind::Irq && (name.empty() || r.actor == name)) {
            out.push_back(r.t);
        }
    }
    return out;
}

std::string TraceRecorder::render_gantt(SimTime t0, SimTime t1, int width) const {
    SLM_ASSERT(t1 > t0 && width > 0, "render_gantt needs a non-empty window");
    std::ostringstream os;
    const double span = static_cast<double>((t1 - t0).ns());
    const auto bucket_of = [&](SimTime t) {
        const double frac = static_cast<double>((t - t0).ns()) / span;
        return std::clamp(static_cast<int>(frac * width), 0, width - 1);
    };

    std::size_t name_w = 4;
    const auto as = actors();
    for (const auto& a : as) {
        name_w = std::max(name_w, a.size());
    }

    for (const auto& a : as) {
        std::string row(static_cast<std::size_t>(width), '.');
        for (const Interval& iv : intervals(a)) {
            if (iv.end <= t0 || iv.begin >= t1) {
                continue;
            }
            const int b0 = bucket_of(std::max(iv.begin, t0));
            const int b1 = bucket_of(std::min(iv.end, t1) - nanoseconds(1));
            for (int b = b0; b <= b1; ++b) {
                row[static_cast<std::size_t>(b)] = '#';
            }
        }
        os << a << std::string(name_w - a.size(), ' ') << " |" << row << "|\n";
    }

    const auto irqs = irq_times();
    if (!irqs.empty()) {
        std::string row(static_cast<std::size_t>(width), ' ');
        for (const SimTime t : irqs) {
            if (t >= t0 && t < t1) {
                row[static_cast<std::size_t>(bucket_of(t))] = '^';
            }
        }
        os << "irq" << std::string(name_w - 3, ' ') << "  " << row << "\n";
    }
    os << "time" << std::string(name_w - 4, ' ') << "  " << t0.to_string() << " .. "
       << t1.to_string() << "\n";
    return os.str();
}

std::string TraceRecorder::utilization_report(SimTime t0, SimTime t1) const {
    SLM_ASSERT(t1 > t0, "utilization_report needs a non-empty window");
    std::ostringstream os;
    const double window = static_cast<double>((t1 - t0).ns());
    std::size_t name_w = 5;
    for (const auto& a : actors()) {
        name_w = std::max(name_w, a.size());
    }
    os << "actor" << std::string(name_w - 5, ' ') << "  busy        util    intervals\n";
    for (const auto& a : actors()) {
        SimTime busy;
        std::size_t count = 0;
        for (const Interval& iv : intervals(a)) {
            const SimTime b = std::max(iv.begin, t0);
            const SimTime e = std::min(iv.end, t1);
            if (e > b) {
                busy += e - b;
                ++count;
            }
        }
        char line[96];
        std::snprintf(line, sizeof line, "%-*s  %-10s  %5.1f%%  %9zu\n",
                      static_cast<int>(name_w), a.c_str(), busy.to_string().c_str(),
                      100.0 * static_cast<double>(busy.ns()) / window, count);
        os << line;
    }
    return os.str();
}

void TraceRecorder::write_csv(std::ostream& os) const {
    os << "t_ns,kind,cpu,actor,detail\n";
    for (const Record& r : records_) {
        os << r.t.ns() << ',' << to_string(r.kind) << ',' << r.cpu << ',' << r.actor << ','
           << r.detail << '\n';
    }
}

void TraceRecorder::write_vcd(std::ostream& os) const {
    const auto as = actors();
    os << "$timescale 1ns $end\n$scope module trace $end\n";
    std::map<std::string, char> ids;
    char next_id = '!';
    for (const auto& a : as) {
        ids[a] = next_id;
        os << "$var wire 1 " << next_id << ' ' << a << " $end\n";
        ++next_id;
    }
    os << "$upscope $end\n$enddefinitions $end\n";

    // Emit value changes from the interval view, merged in time order.
    struct Change {
        SimTime t;
        char id;
        bool value;
    };
    std::vector<Change> changes;
    for (const auto& a : as) {
        for (const Interval& iv : intervals(a)) {
            changes.push_back({iv.begin, ids[a], true});
            changes.push_back({iv.end, ids[a], false});
        }
    }
    std::sort(changes.begin(), changes.end(),
              [](const Change& x, const Change& y) { return x.t < y.t; });

    os << "#0\n";
    for (const auto& a : as) {
        os << '0' << ids[a] << '\n';
    }
    SimTime last;
    bool first = true;
    for (const Change& c : changes) {
        if (first || c.t != last) {
            os << '#' << c.t.ns() << '\n';
            last = c.t;
            first = false;
        }
        os << (c.value ? '1' : '0') << c.id << '\n';
    }
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
    os << "[";
    bool first = true;
    const auto emit = [&](const std::string& json) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "\n" << json;
    };
    // Fixed-point microsecond rendering; names are json_escape()d so actors
    // containing '"' or '\' still produce valid JSON.
    const auto us = [](SimTime t) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(t.ns()) / 1000.0);
        return std::string(buf);
    };

    int tid = 1;
    for (const std::string& a : actors()) {
        const std::string name = json_escape(a);
        emit(R"({"name":"thread_name","ph":"M","pid":1,"tid":)" + std::to_string(tid) +
             R"(,"args":{"name":")" + name + "\"}}");
        for (const Interval& iv : intervals(a)) {
            emit(R"({"name":")" + name + R"(","ph":"X","pid":1,"tid":)" +
                 std::to_string(tid) + R"(,"ts":)" + us(iv.begin) + R"(,"dur":)" +
                 us(iv.end - iv.begin) + "}");
        }
        ++tid;
    }
    for (const Record& r : records_) {
        if (r.kind == RecordKind::Irq) {
            emit(R"({"name":"irq:)" + json_escape(r.actor) +
                 R"(","ph":"i","pid":1,"tid":0,"ts":)" + us(r.t) + R"(,"s":"g"})");
        }
    }
    os << "\n]\n";
}

}  // namespace slm::trace
