#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "sim/time.hpp"
#include "sys/spec.hpp"

namespace slm::soak {

/// Seeded scenario generation for the soak harness (docs/soak-testing.md).
///
/// A Scenario is a fully materialized, self-contained workload description:
/// a sys::AppSpec/PlatformSpec/MappingSpec triple plus the soak-specific
/// extras the spec layer has no vocabulary for (shared mutexes with critical
/// sections, the preemption granularity, the expected job total, and whether
/// the analytic deadline oracle applies). generate(cfg, seed) is a pure
/// function — the same (config, seed) pair always yields the same Scenario,
/// which is what makes every soak run replayable from two integers — and the
/// shrinker (shrink.hpp) edits Scenarios directly, so a minimal repro is a
/// serialized spec, not a seed.

/// splitmix64 — the repo's standard seeded stream (same recurrence as
/// slm::fault's injector PRNG). One instance per generation concern
/// (structure, periods, wcets, mutexes, topology) so changing how one
/// dimension is drawn does not reshuffle the others.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
    /// Uniform in [0, n); 0 for n == 0.
    std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
    /// Uniform in [0, 1).
    double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

private:
    std::uint64_t state_;
};

/// The four workload shapes the generator emits. Periodic and Mutex run on
/// one Priority-scheduled PE with exact per-job costs, so the RTA deadline
/// oracle applies; Pipeline and Isr exercise channel topologies, bus
/// transfers, and bursty interrupt sources, and are checked by the invariant
/// monitors only.
enum class Family { Periodic, Mutex, Pipeline, Isr };

[[nodiscard]] const char* to_string(Family f);

/// A shared mutex and the tasks that contend for it: member task i locks the
/// group's mutex once per job and holds it for cs[i] of its execution budget.
struct MutexGroup {
    std::string name;
    std::vector<std::string> tasks;
    std::vector<SimTime> cs;  ///< critical-section length, parallel to tasks
};

struct Scenario {
    std::string name;
    std::uint64_t seed = 0;
    Family family = Family::Periodic;
    sys::AppSpec app;
    sys::PlatformSpec platform;
    sys::MappingSpec mapping;
    std::vector<MutexGroup> mutexes;
    /// RtosConfig::preemption_granularity for every PE. Nonzero for
    /// oracle-eligible scenarios: with the default one-chunk charging a
    /// lower-priority job is never preempted mid-execution and no analytic
    /// bound would hold (the chunk term enters the blocking bound instead —
    /// see blocking_bound()).
    SimTime granularity{};
    /// Expected sys::SystemMetrics::jobs_completed of a clean run-to-complete
    /// simulation: the sum of every TaskSpec::jobs. The conservation checker
    /// compares against this.
    std::uint64_t total_jobs = 0;
    /// True when the RTA differential oracle applies (single PE, Priority
    /// policy, zero switch cost, per-job cost exactly wcet).
    bool oracle_eligible = false;
};

struct GenConfig {
    std::size_t min_tasks = 3;
    std::size_t max_tasks = 8;
    /// Approximate jobs per scenario (split across tasks by rate).
    std::uint64_t jobs_target = 1000;
    /// Total-utilization range for the periodic families; spans both
    /// RTA-schedulable and unschedulable sets so the oracle exercises its
    /// "must meet bound" and "suspiciously fine" directions.
    double min_util = 0.35;
    double max_util = 0.95;
    bool periodic = true;
    bool mutex = true;
    bool pipeline = true;
    bool isr = true;
};

/// Deterministically materialize the scenario for (cfg, seed).
[[nodiscard]] Scenario generate(const GenConfig& cfg, std::uint64_t seed);

/// The analysis view of a periodic scenario: one PeriodicTaskSpec per app
/// task, in app order, priorities from the mapping bindings. Only meaningful
/// for oracle-eligible scenarios (every task periodic).
[[nodiscard]] std::vector<analysis::PeriodicTaskSpec> analysis_view(
    const Scenario& sc);

/// Upper bound on the blocking term of app task `idx` in this scenario's
/// simulation: Σ critical sections of lower-priority tasks (priority
/// inheritance: a job is blocked at most once per lower-priority critical
/// section) plus one granularity chunk per preemption point — the model
/// preempts only at chunk boundaries, so a newly released job can wait out
/// the tail of a lower-priority chunk, once at release and once per mutex
/// the task itself locks.
[[nodiscard]] SimTime blocking_bound(const Scenario& sc, std::size_t idx);

/// Canonical single-line JSON of a scenario — the "spec" half of a
/// seed+spec repro. Byte-identical for equal scenarios.
void write_scenario_json(std::ostream& os, const Scenario& sc);

}  // namespace slm::soak
