#pragma once

#include <cstdint>
#include <iosfwd>

#include "fault/fault.hpp"
#include "soak/gen.hpp"
#include "soak/soak.hpp"

namespace slm::soak {

/// Delta-debugging shrinker (docs/soak-testing.md): given a failing scenario,
/// greedily apply structure-preserving reductions — drop a task (cascading
/// its channels, stimuli, and mutex memberships), drop a mutex group or a
/// redundant stimulus, halve every job count, halve a task's execution cost,
/// halve a group's critical sections — keeping a reduction only when the
/// reduced scenario still fails (>= 1 violation under the same fault plan).
/// Runs serially and in a deterministic attempt order, so the minimal repro
/// is a pure function of (scenario, plan).

struct ShrinkResult {
    Scenario minimal;
    ScenarioVerdict verdict;  ///< of the minimal scenario
    std::uint64_t rounds = 0;
    std::uint64_t attempts = 0;
    std::uint64_t accepted = 0;
    /// The minimal scenario was re-run and its verdict JSON compared
    /// byte-for-byte — the repro's replay determinism, verified.
    bool replay_identical = false;
};

/// Shrink `failing` (which must fail under `plan`; asserted) to a local
/// minimum: no single remaining reduction preserves the failure.
[[nodiscard]] ShrinkResult shrink(const Scenario& failing,
                                  const fault::FaultPlan* plan = nullptr);

/// Canonical single-line slm-soak-shrink-v1 JSON: shrink statistics, the
/// minimal verdict, and the full minimal scenario spec (the seed+spec repro).
void write_shrink_json(std::ostream& os, const ShrinkResult& res);

}  // namespace slm::soak
