#include "soak/shrink.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <string>

#include "sim/assert.hpp"
#include "sys/spec.hpp"

namespace slm::soak {

namespace {

constexpr std::uint64_t kMaxAttempts = 10'000;

/// Re-establish the cross-field invariants a structural edit can break:
/// mutex groups need >= 2 members, data-driven consumers can only run as
/// many jobs as their inputs supply tokens for, and total_jobs is the sum of
/// the per-task budgets. Token supply propagates in app task order, which is
/// chain order for every generated family.
void normalize(Scenario& sc) {
    std::erase_if(sc.mutexes, [](const MutexGroup& g) { return g.tasks.size() < 2; });
    for (sys::TaskSpec& t : sc.app.tasks) {
        if (!t.period.is_zero()) {
            continue;  // periodic: release-driven, jobs stay as drawn
        }
        std::uint64_t supply = 0;
        bool has_input = false;
        for (const sys::ChannelSpec& c : sc.app.channels) {
            if (c.dst != t.name) {
                continue;
            }
            std::uint64_t chan_supply = 0;
            if (c.src.empty()) {
                for (const sys::StimulusSpec& s : sc.app.stimuli) {
                    if (s.channel == c.name) {
                        chan_supply += s.count;
                    }
                }
            } else {
                for (const sys::TaskSpec& src : sc.app.tasks) {
                    if (src.name == c.src) {
                        chan_supply = src.jobs;
                    }
                }
            }
            supply = has_input ? std::min(supply, chan_supply) : chan_supply;
            has_input = true;
        }
        if (has_input) {
            t.jobs = std::max<std::uint64_t>(1, supply);
        }
    }
    sc.total_jobs = 0;
    for (const sys::TaskSpec& t : sc.app.tasks) {
        sc.total_jobs += t.jobs;
    }
}

/// Remove task `idx` and everything referencing it.
void drop_task(Scenario& sc, std::size_t idx) {
    const std::string name = sc.app.tasks[idx].name;
    sc.app.tasks.erase(sc.app.tasks.begin() + static_cast<std::ptrdiff_t>(idx));
    std::vector<std::string> dead_channels;
    std::erase_if(sc.app.channels, [&](const sys::ChannelSpec& c) {
        if (c.src == name || c.dst == name) {
            dead_channels.push_back(c.name);
            return true;
        }
        return false;
    });
    std::erase_if(sc.app.stimuli, [&](const sys::StimulusSpec& s) {
        return std::find(dead_channels.begin(), dead_channels.end(), s.channel) !=
               dead_channels.end();
    });
    std::erase_if(sc.mapping.bindings,
                  [&](const sys::TaskBinding& b) { return b.task == name; });
    std::erase_if(sc.mapping.routes, [&](const sys::ChannelRoute& r) {
        return std::find(dead_channels.begin(), dead_channels.end(), r.channel) !=
               dead_channels.end();
    });
    for (MutexGroup& g : sc.mutexes) {
        for (std::size_t m = g.tasks.size(); m-- > 0;) {
            if (g.tasks[m] == name) {
                g.tasks.erase(g.tasks.begin() + static_cast<std::ptrdiff_t>(m));
                g.cs.erase(g.cs.begin() + static_cast<std::ptrdiff_t>(m));
            }
        }
    }
}

void halve_jobs(Scenario& sc) {
    for (sys::TaskSpec& t : sc.app.tasks) {
        t.jobs = std::max<std::uint64_t>(1, t.jobs / 2);
    }
    for (sys::StimulusSpec& s : sc.app.stimuli) {
        s.count = std::max<std::uint64_t>(1, s.count / 2);
    }
}

void halve_exec(Scenario& sc, std::size_t idx) {
    sys::TaskSpec& t = sc.app.tasks[idx];
    t.exec_cost = nanoseconds(std::max<std::uint64_t>(1, t.exec_cost.ns() / 2));
    // Critical sections live inside the execution budget: shrink them along
    // so the split behavior never charges more than exec_cost.
    for (MutexGroup& g : sc.mutexes) {
        for (std::size_t m = 0; m < g.tasks.size(); ++m) {
            if (g.tasks[m] == t.name) {
                g.cs[m] = nanoseconds(std::clamp<std::uint64_t>(
                    g.cs[m].ns() / 2, 1, std::max<std::uint64_t>(1, t.exec_cost.ns() / 2)));
            }
        }
    }
}

void halve_cs(Scenario& sc, std::size_t group) {
    for (SimTime& cs : sc.mutexes[group].cs) {
        cs = nanoseconds(std::max<std::uint64_t>(1, cs.ns() / 2));
    }
}

/// True when the candidate is structurally valid and still fails under the
/// plan; fills `verdict` with the candidate's result when it does.
bool still_fails(const Scenario& sc, const fault::FaultPlan* plan,
                 ScenarioVerdict& verdict) {
    if (sc.app.tasks.empty() ||
        !sys::validate(sc.app, sc.platform, sc.mapping).empty()) {
        return false;
    }
    ScenarioVerdict v = run_scenario(sc, plan);
    if (!v.failed()) {
        return false;
    }
    verdict = std::move(v);
    return true;
}

std::string verdict_bytes(const ScenarioVerdict& v) {
    std::ostringstream os;
    write_verdict_json(os, v);
    return os.str();
}

}  // namespace

ShrinkResult shrink(const Scenario& failing, const fault::FaultPlan* plan) {
    ShrinkResult res;
    res.minimal = failing;
    res.verdict = run_scenario(failing, plan);
    SLM_ASSERT(res.verdict.failed(), "shrink() needs a failing scenario");

    // Greedy fixpoint: walk the reduction menu in a fixed order; every
    // acceptance restarts the menu on the smaller scenario. A round with no
    // acceptance is the local minimum.
    bool progress = true;
    while (progress && res.attempts < kMaxAttempts) {
        progress = false;
        ++res.rounds;
        const auto attempt = [&](Scenario&& candidate) {
            ++res.attempts;
            normalize(candidate);
            ScenarioVerdict v;
            if (still_fails(candidate, plan, v)) {
                res.minimal = std::move(candidate);
                res.verdict = std::move(v);
                ++res.accepted;
                progress = true;
                return true;
            }
            return false;
        };
        for (std::size_t i = 0; !progress && i < res.minimal.app.tasks.size(); ++i) {
            Scenario c = res.minimal;
            drop_task(c, i);
            attempt(std::move(c));
        }
        for (std::size_t g = 0; !progress && g < res.minimal.mutexes.size(); ++g) {
            Scenario c = res.minimal;
            c.mutexes.erase(c.mutexes.begin() + static_cast<std::ptrdiff_t>(g));
            attempt(std::move(c));
        }
        for (std::size_t s = 0; !progress && s < res.minimal.app.stimuli.size(); ++s) {
            // Keep at least one source per stimulus channel: a token-less
            // channel would starve its consumer into a bogus conservation
            // failure instead of reproducing the real one.
            const std::string& chan = res.minimal.app.stimuli[s].channel;
            std::size_t feeders = 0;
            for (const sys::StimulusSpec& st : res.minimal.app.stimuli) {
                feeders += st.channel == chan ? 1 : 0;
            }
            if (feeders < 2) {
                continue;
            }
            Scenario c = res.minimal;
            c.app.stimuli.erase(c.app.stimuli.begin() + static_cast<std::ptrdiff_t>(s));
            attempt(std::move(c));
        }
        if (!progress) {
            bool at_floor = true;
            for (const sys::TaskSpec& t : res.minimal.app.tasks) {
                at_floor = at_floor && t.jobs == 1;
            }
            if (!at_floor) {
                Scenario c = res.minimal;
                halve_jobs(c);
                attempt(std::move(c));
            }
        }
        for (std::size_t i = 0; !progress && i < res.minimal.app.tasks.size(); ++i) {
            if (res.minimal.app.tasks[i].exec_cost.ns() <= 1) {
                continue;
            }
            Scenario c = res.minimal;
            halve_exec(c, i);
            attempt(std::move(c));
        }
        for (std::size_t g = 0; !progress && g < res.minimal.mutexes.size(); ++g) {
            Scenario c = res.minimal;
            halve_cs(c, g);
            attempt(std::move(c));
        }
    }

    res.minimal.name = "s" + std::to_string(res.minimal.seed) + "-min";
    res.verdict = run_scenario(res.minimal, plan);
    res.replay_identical =
        verdict_bytes(res.verdict) == verdict_bytes(run_scenario(res.minimal, plan));
    return res;
}

void write_shrink_json(std::ostream& os, const ShrinkResult& res) {
    os << "{\"schema\":\"slm-soak-shrink-v1\"";
    os << ",\"rounds\":" << res.rounds;
    os << ",\"attempts\":" << res.attempts;
    os << ",\"accepted\":" << res.accepted;
    os << ",\"replay_identical\":" << (res.replay_identical ? "true" : "false");
    os << ",\"verdict\":";
    write_verdict_json(os, res.verdict);
    os << ",\"scenario\":";
    write_scenario_json(os, res.minimal);
    os << "}\n";
}

}  // namespace slm::soak
