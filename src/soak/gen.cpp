#include "soak/gen.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "trace/trace.hpp"

namespace slm::soak {

namespace {

using time_literals::operator""_us;

/// Period ladder for the periodic families, microseconds. A deliberately
/// small set of mutually friendly values keeps hyperperiods representable
/// for most draws while still producing varied rate mixes; the hyperperiod
/// overflow path is exercised separately by tests with adversarial periods.
constexpr std::uint64_t kPeriodLadderUs[] = {500, 1000, 2000, 4000, 5000, 8000, 10000};

/// Stimulus period ladder for the channel families, microseconds.
constexpr std::uint64_t kStimLadderUs[] = {200, 400, 500, 800, 1000};

/// UUniFast (Bini & Buttazzo): split total utilization U across n tasks,
/// uniformly over the simplex.
std::vector<double> uunifast(Rng& rng, std::size_t n, double total) {
    std::vector<double> u(n);
    double sum = total;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double next =
            sum * std::pow(rng.unit(), 1.0 / static_cast<double>(n - 1 - i));
        u[i] = sum - next;
        sum = next;
    }
    u[n - 1] = sum;
    return u;
}

/// Rate-proportional per-task job counts summing to roughly jobs_target:
/// every task runs for the same virtual horizon H = target / Σ(1/T_i).
std::vector<std::uint64_t> job_split(const std::vector<SimTime>& periods,
                                     std::uint64_t jobs_target) {
    double total_rate = 0.0;
    for (const SimTime& p : periods) {
        total_rate += 1.0 / static_cast<double>(p.ns());
    }
    const double horizon = static_cast<double>(jobs_target) / total_rate;
    std::vector<std::uint64_t> jobs(periods.size());
    for (std::size_t i = 0; i < periods.size(); ++i) {
        const double j = horizon / static_cast<double>(periods[i].ns());
        jobs[i] = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(j));
    }
    return jobs;
}

void finish_totals(Scenario& sc) {
    sc.total_jobs = 0;
    for (const sys::TaskSpec& t : sc.app.tasks) {
        sc.total_jobs += t.jobs;
    }
}

/// One Priority-scheduled PE, zero switch cost, speed 1/1 — the platform
/// shape the RTA oracle is sound for.
void single_pe_platform(Scenario& sc) {
    sys::PeSpec pe;
    pe.name = "PE0";
    pe.policy = rtos::SchedPolicy::Priority;
    sc.platform.name = "soak-1pe";
    sc.platform.pes.push_back(pe);
}

/// The periodic families: n independent periodic tasks, RMS priorities,
/// total utilization drawn from [min_util, max_util]. `with_mutexes` adds
/// 1-2 contention groups whose members spend part of their budget inside a
/// priority-inheritance critical section.
Scenario periodic_scenario(const GenConfig& cfg, std::uint64_t seed,
                           bool with_mutexes, Rng& structure, Rng& periods_rng,
                           Rng& wcets_rng, Rng& mutexes_rng) {
    Scenario sc;
    sc.seed = seed;
    sc.name = "s" + std::to_string(seed);
    sc.family = with_mutexes ? Family::Mutex : Family::Periodic;
    sc.oracle_eligible = true;
    single_pe_platform(sc);

    const std::size_t span = cfg.max_tasks - cfg.min_tasks + 1;
    const std::size_t n = cfg.min_tasks + structure.below(span);
    std::vector<SimTime> periods(n);
    for (SimTime& p : periods) {
        p = microseconds(kPeriodLadderUs[periods_rng.below(std::size(kPeriodLadderUs))]);
    }
    const double total_util =
        cfg.min_util + wcets_rng.unit() * (cfg.max_util - cfg.min_util);
    const std::vector<double> util = uunifast(wcets_rng, n, total_util);
    const std::vector<std::uint64_t> jobs = job_split(periods, cfg.jobs_target);

    std::vector<analysis::PeriodicTaskSpec> view(n);
    for (std::size_t i = 0; i < n; ++i) {
        sys::TaskSpec t;
        t.name = "t" + std::to_string(i);
        t.period = periods[i];
        const std::uint64_t lo = 1000;  // 1 us floor
        const std::uint64_t hi = periods[i].ns() * 4 / 5;
        const auto want =
            static_cast<std::uint64_t>(util[i] * static_cast<double>(periods[i].ns()));
        t.exec_cost = nanoseconds(std::clamp(want, lo, hi));
        t.jobs = jobs[i];
        sc.app.tasks.push_back(t);
        view[i] = {t.name, t.period, t.exec_cost, SimTime::zero(), 0};
    }
    sc.app.name = sc.name;
    analysis::assign_rms_priorities(view);

    SimTime min_period = periods.front();
    for (const SimTime& p : periods) {
        min_period = std::min(min_period, p);
    }
    sc.granularity = nanoseconds(std::max<std::uint64_t>(1000, min_period.ns() / 8));

    sc.mapping.name = "m0";
    for (std::size_t i = 0; i < n; ++i) {
        sc.app.tasks[i].priority = view[i].priority;
        sc.mapping.bindings.push_back({view[i].name, "PE0", view[i].priority});
    }

    if (with_mutexes) {
        const std::size_t groups = 1 + mutexes_rng.below(2);
        for (std::size_t g = 0; g < groups; ++g) {
            // Partial Fisher-Yates: k distinct member tasks.
            std::vector<std::size_t> idx(n);
            for (std::size_t i = 0; i < n; ++i) {
                idx[i] = i;
            }
            const std::size_t k = 2 + mutexes_rng.below(n - 1);
            for (std::size_t i = 0; i < k; ++i) {
                std::swap(idx[i], idx[i + mutexes_rng.below(n - i)]);
            }
            MutexGroup mg;
            mg.name = "mux" + std::to_string(g);
            for (std::size_t i = 0; i < k; ++i) {
                const sys::TaskSpec& t = sc.app.tasks[idx[i]];
                const double frac = 0.1 + 0.25 * mutexes_rng.unit();
                const auto cs = static_cast<std::uint64_t>(
                    frac * static_cast<double>(t.exec_cost.ns()));
                mg.tasks.push_back(t.name);
                mg.cs.push_back(nanoseconds(
                    std::clamp<std::uint64_t>(cs, 1, t.exec_cost.ns() / 2)));
            }
            // Member order by app index keeps the JSON canonical.
            std::vector<std::size_t> order(k);
            for (std::size_t i = 0; i < k; ++i) {
                order[i] = i;
            }
            std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
                return idx[a] < idx[b];
            });
            MutexGroup sorted;
            sorted.name = mg.name;
            for (std::size_t i : order) {
                sorted.tasks.push_back(mg.tasks[i]);
                sorted.cs.push_back(mg.cs[i]);
            }
            sc.mutexes.push_back(std::move(sorted));
        }
    }
    finish_totals(sc);
    return sc;
}

/// Pipeline family: a stimulus-fed chain of data-driven tasks spread over
/// one or two PEs; cross-PE hops (and the stimulus injection) ride the bus,
/// co-located hops use intra-PE OS queues. Checked by invariants only.
Scenario pipeline_scenario(const GenConfig& cfg, std::uint64_t seed, Rng& structure,
                           Rng& periods_rng, Rng& wcets_rng, Rng& topology) {
    Scenario sc;
    sc.seed = seed;
    sc.name = "s" + std::to_string(seed);
    sc.family = Family::Pipeline;
    sc.granularity = 100_us;

    const std::size_t npe = 1 + structure.below(2);
    sc.platform.name = npe == 1 ? "soak-1pe-bus" : "soak-2pe-bus";
    for (std::size_t p = 0; p < npe; ++p) {
        sys::PeSpec pe;
        pe.name = "PE" + std::to_string(p);
        pe.policy = rtos::SchedPolicy::Priority;
        sc.platform.pes.push_back(pe);
    }
    sc.platform.buses.push_back(sys::BusSpec{"bus0"});

    const std::size_t k = 2 + structure.below(4);  // chain length 2..5
    const SimTime stim_period =
        microseconds(kStimLadderUs[periods_rng.below(std::size(kStimLadderUs))]);
    const std::uint64_t count =
        std::max<std::uint64_t>(1, cfg.jobs_target / k);

    sc.app.name = sc.name;
    sc.mapping.name = "m0";
    std::vector<std::string> pe_of(k);
    for (std::size_t i = 0; i < k; ++i) {
        sys::TaskSpec t;
        t.name = "t" + std::to_string(i);
        const double frac = 0.05 + 0.5 * wcets_rng.unit();
        t.exec_cost = nanoseconds(std::max<std::uint64_t>(
            1000, static_cast<std::uint64_t>(
                      frac * static_cast<double>(stim_period.ns()) /
                      static_cast<double>(npe))));
        t.jobs = count;
        t.priority = static_cast<int>(i) + 1;
        sc.app.tasks.push_back(t);
        pe_of[i] = "PE" + std::to_string(topology.below(npe));
        sc.mapping.bindings.push_back({t.name, pe_of[i], t.priority});
    }
    for (std::size_t c = 0; c <= k - 1; ++c) {
        sys::ChannelSpec ch;
        ch.name = "c" + std::to_string(c);
        ch.src = c == 0 ? "" : ("t" + std::to_string(c - 1));
        ch.dst = "t" + std::to_string(c == 0 ? 0 : c);
        ch.message_bytes = 4 + topology.below(60);
        sc.app.channels.push_back(ch);
        const bool bus = c == 0 || pe_of[c - 1] != pe_of[c];
        sc.mapping.routes.push_back({ch.name, bus ? "bus0" : ""});
    }
    // Inner chain hops c1..c(k-1); c0 is the stimulus injection.
    // (Channel c(j) for j >= 1 connects t(j-1) -> t(j).)
    sc.app.stimuli.push_back(sys::StimulusSpec{"stim0", "c0", stim_period, count});
    finish_totals(sc);
    return sc;
}

/// Isr family: several stimulus sources — one of them a fast burster —
/// feeding the same bus channel, so the receiver-side ISR and semaphore see
/// clustered arrivals; a one- or two-stage consumer drains them.
Scenario isr_scenario(const GenConfig& cfg, std::uint64_t seed, Rng& structure,
                      Rng& periods_rng, Rng& wcets_rng, Rng& topology) {
    Scenario sc;
    sc.seed = seed;
    sc.name = "s" + std::to_string(seed);
    sc.family = Family::Isr;
    sc.granularity = 50_us;
    single_pe_platform(sc);
    sc.platform.name = "soak-1pe-bus";
    sc.platform.buses.push_back(sys::BusSpec{"bus0"});

    const std::size_t stages = 1 + structure.below(2);
    const std::size_t sources = 2 + structure.below(2);
    const std::uint64_t total = std::max<std::uint64_t>(sources, cfg.jobs_target);

    sc.app.name = sc.name;
    sc.mapping.name = "m0";
    for (std::size_t i = 0; i < stages; ++i) {
        sys::TaskSpec t;
        t.name = "t" + std::to_string(i);
        t.exec_cost = nanoseconds(
            1000 + static_cast<std::uint64_t>(30'000.0 * wcets_rng.unit()));
        t.jobs = total;
        t.priority = static_cast<int>(i) + 1;
        sc.app.tasks.push_back(t);
        sc.mapping.bindings.push_back({t.name, "PE0", t.priority});
    }
    sys::ChannelSpec in;
    in.name = "c0";
    in.dst = "t0";
    in.message_bytes = 4 + topology.below(28);
    sc.app.channels.push_back(in);
    sc.mapping.routes.push_back({"c0", "bus0"});
    if (stages == 2) {
        sys::ChannelSpec mid;
        mid.name = "c1";
        mid.src = "t0";
        mid.dst = "t1";
        sc.app.channels.push_back(mid);
        sc.mapping.routes.push_back({"c1", ""});
    }

    // Token budget split across the sources; the first source is the burster
    // (a period well below the others, clustering bus posts and ISRs).
    std::uint64_t left = total;
    for (std::size_t s = 0; s < sources; ++s) {
        sys::StimulusSpec st;
        st.name = "stim" + std::to_string(s);
        st.channel = "c0";
        if (s == 0) {
            st.period = microseconds(50 * (1 + periods_rng.below(4)));
        } else {
            st.period =
                microseconds(kStimLadderUs[periods_rng.below(std::size(kStimLadderUs))]);
        }
        const std::uint64_t share =
            s + 1 == sources ? left : std::max<std::uint64_t>(1, total / sources);
        st.count = std::min(share, left);
        left -= st.count;
        sc.app.stimuli.push_back(st);
        if (left == 0) {
            break;
        }
    }
    // If the split ran dry early, top the first source back up so counts
    // still sum to the consumers' job budget.
    std::uint64_t stim_total = 0;
    for (const sys::StimulusSpec& st : sc.app.stimuli) {
        stim_total += st.count;
    }
    if (stim_total < total) {
        sc.app.stimuli.front().count += total - stim_total;
    }
    finish_totals(sc);
    return sc;
}

}  // namespace

const char* to_string(Family f) {
    switch (f) {
        case Family::Periodic: return "periodic";
        case Family::Mutex: return "mutex";
        case Family::Pipeline: return "pipeline";
        case Family::Isr: return "isr";
    }
    return "?";
}

Scenario generate(const GenConfig& cfg, std::uint64_t seed) {
    // Stream seeds drawn in a fixed order: adding a concern later appends a
    // draw instead of reshuffling existing scenarios.
    Rng root(seed);
    Rng structure(root.next());
    Rng periods(root.next());
    Rng wcets(root.next());
    Rng mutexes(root.next());
    Rng topology(root.next());

    std::vector<Family> enabled;
    if (cfg.periodic) {
        enabled.push_back(Family::Periodic);
    }
    if (cfg.mutex) {
        enabled.push_back(Family::Mutex);
    }
    if (cfg.pipeline) {
        enabled.push_back(Family::Pipeline);
    }
    if (cfg.isr) {
        enabled.push_back(Family::Isr);
    }
    if (enabled.empty()) {
        enabled.push_back(Family::Periodic);
    }
    const Family fam = enabled[structure.below(enabled.size())];
    switch (fam) {
        case Family::Periodic:
            return periodic_scenario(cfg, seed, false, structure, periods, wcets,
                                     mutexes);
        case Family::Mutex:
            return periodic_scenario(cfg, seed, true, structure, periods, wcets,
                                     mutexes);
        case Family::Pipeline:
            return pipeline_scenario(cfg, seed, structure, periods, wcets, topology);
        case Family::Isr:
            return isr_scenario(cfg, seed, structure, periods, wcets, topology);
    }
    return periodic_scenario(cfg, seed, false, structure, periods, wcets, mutexes);
}

std::vector<analysis::PeriodicTaskSpec> analysis_view(const Scenario& sc) {
    std::vector<analysis::PeriodicTaskSpec> view;
    view.reserve(sc.app.tasks.size());
    for (const sys::TaskSpec& t : sc.app.tasks) {
        const sys::TaskBinding* b = sc.mapping.binding(t.name);
        view.push_back({t.name, t.period, t.exec_cost, t.deadline,
                        b != nullptr ? b->priority : t.priority});
    }
    return view;
}

SimTime blocking_bound(const Scenario& sc, std::size_t idx) {
    const sys::TaskSpec& ti = sc.app.tasks[idx];
    const sys::TaskBinding* bi = sc.mapping.binding(ti.name);
    const int pri = bi != nullptr ? bi->priority : ti.priority;
    SimTime bound;
    std::uint64_t own_locks = 0;
    for (const MutexGroup& g : sc.mutexes) {
        for (std::size_t m = 0; m < g.tasks.size(); ++m) {
            if (g.tasks[m] == ti.name) {
                ++own_locks;
                continue;
            }
            const sys::TaskBinding* bm = sc.mapping.binding(g.tasks[m]);
            const int mp = bm != nullptr ? bm->priority : 0;
            if (mp > pri) {  // numerically greater = lower priority
                bound += g.cs[m];
            }
        }
    }
    bound += sc.granularity * (1 + own_locks);
    return bound;
}

void write_scenario_json(std::ostream& os, const Scenario& sc) {
    os << "{\"schema\":\"slm-soak-scenario-v1\"";
    os << ",\"name\":\"" << trace::json_escape(sc.name) << '"';
    os << ",\"seed\":" << sc.seed;
    os << ",\"family\":\"" << to_string(sc.family) << '"';
    os << ",\"granularity_ns\":" << sc.granularity.ns();
    os << ",\"total_jobs\":" << sc.total_jobs;
    os << ",\"oracle_eligible\":" << (sc.oracle_eligible ? "true" : "false");
    os << ",\"task_count\":" << sc.app.tasks.size();
    os << ",\"tasks\":[";
    for (std::size_t i = 0; i < sc.app.tasks.size(); ++i) {
        const sys::TaskSpec& t = sc.app.tasks[i];
        const sys::TaskBinding* b = sc.mapping.binding(t.name);
        if (i != 0) {
            os << ',';
        }
        os << "{\"name\":\"" << trace::json_escape(t.name) << '"'
           << ",\"exec_ns\":" << t.exec_cost.ns()
           << ",\"period_ns\":" << t.period.ns()
           << ",\"deadline_ns\":" << t.deadline.ns() << ",\"jobs\":" << t.jobs
           << ",\"pe\":\"" << trace::json_escape(b != nullptr ? b->pe : "") << '"'
           << ",\"priority\":" << (b != nullptr ? b->priority : t.priority) << '}';
    }
    os << "],\"channels\":[";
    for (std::size_t i = 0; i < sc.app.channels.size(); ++i) {
        const sys::ChannelSpec& c = sc.app.channels[i];
        const sys::ChannelRoute* r = sc.mapping.route(c.name);
        if (i != 0) {
            os << ',';
        }
        os << "{\"name\":\"" << trace::json_escape(c.name) << '"'
           << ",\"src\":\"" << trace::json_escape(c.src) << '"'
           << ",\"dst\":\"" << trace::json_escape(c.dst) << '"'
           << ",\"bytes\":" << c.message_bytes << ",\"bus\":\""
           << trace::json_escape(r != nullptr ? r->bus : "") << "\"}";
    }
    os << "],\"stimuli\":[";
    for (std::size_t i = 0; i < sc.app.stimuli.size(); ++i) {
        const sys::StimulusSpec& s = sc.app.stimuli[i];
        if (i != 0) {
            os << ',';
        }
        os << "{\"name\":\"" << trace::json_escape(s.name) << '"'
           << ",\"channel\":\"" << trace::json_escape(s.channel) << '"'
           << ",\"period_ns\":" << s.period.ns() << ",\"count\":" << s.count << '}';
    }
    os << "],\"mutexes\":[";
    for (std::size_t i = 0; i < sc.mutexes.size(); ++i) {
        const MutexGroup& g = sc.mutexes[i];
        if (i != 0) {
            os << ',';
        }
        os << "{\"name\":\"" << trace::json_escape(g.name) << "\",\"members\":[";
        for (std::size_t m = 0; m < g.tasks.size(); ++m) {
            if (m != 0) {
                os << ',';
            }
            os << "{\"task\":\"" << trace::json_escape(g.tasks[m]) << '"'
               << ",\"cs_ns\":" << g.cs[m].ns() << '}';
        }
        os << "]}";
    }
    os << "],\"pes\":[";
    for (std::size_t i = 0; i < sc.platform.pes.size(); ++i) {
        if (i != 0) {
            os << ',';
        }
        os << '"' << trace::json_escape(sc.platform.pes[i].name) << '"';
    }
    os << "],\"buses\":[";
    for (std::size_t i = 0; i < sc.platform.buses.size(); ++i) {
        if (i != 0) {
            os << ',';
        }
        os << '"' << trace::json_escape(sc.platform.buses[i].name) << '"';
    }
    os << "]}";
}

}  // namespace slm::soak
