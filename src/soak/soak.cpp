#include "soak/soak.hpp"

#include <cstring>
#include <memory>
#include <optional>
#include <ostream>
#include <utility>

#include "rtos/os_channels.hpp"
#include "sim/assert.hpp"
#include "sys/elaborate.hpp"
#include "trace/trace.hpp"

namespace slm::soak {

namespace {

constexpr std::size_t kMaxStoredWaitViolations = 8;

}  // namespace

// ---- SoakMonitor ----

void SoakMonitor::set_wait_bound(const std::string& task, SimTime bound) {
    wait_bounds_[task] = bound;
}

void SoakMonitor::stamp(SimTime now) {
    if (now < last_) {
        if (monotone_violations_ == 0) {
            first_monotone_ = "monotone: observer time went backwards (" +
                              last_.to_string() + " -> " + now.to_string() + ")";
        }
        ++monotone_violations_;
    } else {
        last_ = now;
    }
}

void SoakMonitor::on_task_state(const rtos::Task&, rtos::TaskState, rtos::TaskState,
                                SimTime now) {
    stamp(now);
}

void SoakMonitor::on_preempt(const rtos::Task&, const rtos::Task&, SimTime now) {
    stamp(now);
}

void SoakMonitor::on_completion(const rtos::Task&, SimTime, bool, SimTime now) {
    stamp(now);
}

void SoakMonitor::on_isr(const std::string&, SimTime now) { stamp(now); }

void SoakMonitor::on_resource_block(const rtos::Task&, const rtos::Task&,
                                    const std::string&, SimTime now) {
    stamp(now);
}

void SoakMonitor::on_resource_acquire(const rtos::Task& t, const std::string& r,
                                      SimTime waited, SimTime now) {
    stamp(now);
    const auto it = wait_bounds_.find(t.name());
    if (it != wait_bounds_.end() && waited > it->second) {
        if (wait_violations_.size() < kMaxStoredWaitViolations) {
            wait_violations_.push_back(
                "blocking: task " + t.name() + " waited " +
                std::to_string(waited.ns()) + " ns for " + r + " (bound " +
                std::to_string(it->second.ns()) + " ns)");
        }
        ++wait_violation_count_;
    }
}

void SoakMonitor::on_resource_release(const rtos::Task&, const std::string&,
                                      SimTime now) {
    stamp(now);
}

void SoakMonitor::on_channel_op(const std::string& channel, const char* op,
                                SimTime now) {
    stamp(now);
    ChannelOps& c = channels_[channel];
    if (std::strcmp(op, "send") == 0) {
        ++c.sends;
    } else if (std::strcmp(op, "recv") == 0) {
        ++c.recvs;
    } else if (std::strcmp(op, "acquire") == 0) {
        ++c.acquires;
    } else if (std::strcmp(op, "release") == 0) {
        ++c.releases;
    }
}

void SoakMonitor::on_deadline_miss(const rtos::Task&, SimTime, SimTime now) {
    stamp(now);
}

void SoakMonitor::finish(std::vector<std::string>& out) const {
    if (monotone_violations_ != 0) {
        out.push_back(first_monotone_ + " (" +
                      std::to_string(monotone_violations_) + " total)");
    }
    // std::map iteration = name order: deterministic at any jobs count.
    for (const auto& [name, ops] : channels_) {
        if (ops.sends != ops.recvs) {
            out.push_back("lost-token: channel " + name + " saw " +
                          std::to_string(ops.sends) + " sends but " +
                          std::to_string(ops.recvs) + " recvs");
        }
        if (ops.acquires != ops.releases) {
            out.push_back("lost-wakeup: channel " + name + " saw " +
                          std::to_string(ops.releases) + " releases but " +
                          std::to_string(ops.acquires) + " acquires");
        }
    }
    for (const std::string& w : wait_violations_) {
        out.push_back(w);
    }
    if (wait_violation_count_ > wait_violations_.size()) {
        out.push_back("blocking: " +
                      std::to_string(wait_violation_count_ - wait_violations_.size()) +
                      " further bound violations elided");
    }
}

// ---- engine ----

ScenarioVerdict run_scenario(const Scenario& sc, const fault::FaultPlan* plan) {
    ScenarioVerdict v;
    v.seed = sc.seed;
    v.name = sc.name;
    v.family = to_string(sc.family);
    v.expected_jobs = sc.total_jobs;
    v.oracle_eligible = sc.oracle_eligible;

    // Analytic side of the differential oracle, computed before the run so a
    // wait bound can stream-check during it.
    std::vector<analysis::PeriodicTaskSpec> view;
    std::vector<SimTime> bounds;
    bool schedulable = false;
    if (sc.oracle_eligible) {
        view = analysis_view(sc);
        v.hyperperiod_overflow = !analysis::hyperperiod_checked(view).has_value();
        schedulable = true;
        bounds.resize(view.size());
        for (std::size_t i = 0; i < view.size(); ++i) {
            const std::optional<SimTime> r =
                analysis::response_time_with_blocking(view, i, blocking_bound(sc, i));
            if (!r.has_value() || *r > view[i].effective_deadline()) {
                schedulable = false;
                break;
            }
            bounds[i] = *r;
        }
    }
    v.rta_schedulable = schedulable;

    SoakMonitor monitor;
    if (schedulable) {
        // A mutex wait is part of the response: it can never legitimately
        // exceed the task's whole response-time bound.
        for (std::size_t i = 0; i < view.size(); ++i) {
            monitor.set_wait_bound(view[i].name, bounds[i]);
        }
    }

    std::optional<fault::FaultInjector> inj;
    if (plan != nullptr) {
        inj.emplace(*plan, sc.seed);
    }

    sys::SystemOptions opts;
    opts.base_rtos.preemption_granularity = sc.granularity;
    opts.on_os = [&](rtos::OsCore& os) {
        os.add_observer(&monitor);
        if (inj.has_value()) {
            inj->attach(os);
        }
    };
    sys::System system(sc.app, sc.platform, sc.mapping, opts);

    // Shared mutexes + the split behaviors of their member tasks: the
    // critical sections live inside the member's execution budget, so total
    // per-job work still equals the spec's exec_cost and the RTA wcet.
    std::vector<std::unique_ptr<rtos::OsMutex>> mutexes;
    if (!sc.mutexes.empty()) {
        std::map<std::string, rtos::OsMutex*> by_name;
        for (const MutexGroup& g : sc.mutexes) {
            const sys::TaskBinding* b = sc.mapping.binding(g.tasks.front());
            SLM_ASSERT(b != nullptr, "mutex group member has no binding");
            arch::ProcessingElement* host = system.pe(b->pe);
            mutexes.push_back(std::make_unique<rtos::OsMutex>(
                host->os(), rtos::OsMutex::Protocol::PriorityInheritance, g.name));
            by_name[g.name] = mutexes.back().get();
        }
        for (const sys::TaskSpec& t : sc.app.tasks) {
            std::vector<std::pair<rtos::OsMutex*, SimTime>> locks;
            for (const MutexGroup& g : sc.mutexes) {
                for (std::size_t m = 0; m < g.tasks.size(); ++m) {
                    if (g.tasks[m] == t.name) {
                        locks.emplace_back(by_name[g.name], g.cs[m]);
                    }
                }
            }
            if (locks.empty()) {
                continue;
            }
            SimTime cs_total;
            for (const auto& [mux, cs] : locks) {
                cs_total += cs;
            }
            const SimTime pre = (t.exec_cost - cs_total) / 2;
            const SimTime post = t.exec_cost - cs_total - pre;
            system.set_behavior(t.name,
                                [pre, post, locks = std::move(locks)](sys::TaskCtx& ctx) {
                                    ctx.exec(pre);
                                    for (const auto& [mux, cs] : locks) {
                                        mux->lock();
                                        ctx.exec(cs);
                                        mux->unlock();
                                    }
                                    ctx.exec(post);
                                });
        }
    }

    system.run();  // horizon zero: to completion, so conservation is exact

    const sys::SystemMetrics m = system.metrics();
    v.jobs_completed = m.jobs_completed;
    v.sim_ns = m.sim_duration.ns();
    v.deadline_misses = m.task_deadline_misses;
    for (const sys::PeMetrics& pe : m.pes) {
        v.preemptions += pe.preemptions;
    }
    if (inj.has_value()) {
        v.faults_injected = inj->stats().total();
    }

    if (m.jobs_completed != sc.total_jobs) {
        v.violations.push_back("conservation: completed " +
                               std::to_string(m.jobs_completed) + " of " +
                               std::to_string(sc.total_jobs) + " expected jobs");
    }
    monitor.finish(v.violations);

    if (sc.oracle_eligible) {
        arch::ProcessingElement* pe0 = system.pe(sc.platform.pes.front().name);
        if (schedulable) {
            for (std::size_t i = 0; i < view.size(); ++i) {
                const rtos::Task* task = nullptr;
                for (const rtos::Task* t : pe0->os().tasks()) {
                    if (t->name() == view[i].name) {
                        task = t;
                    }
                }
                SLM_ASSERT(task != nullptr, "oracle task vanished");
                if (task->stats().deadline_misses != 0) {
                    v.violations.push_back(
                        "rta: schedulable task " + view[i].name + " missed " +
                        std::to_string(task->stats().deadline_misses) + " deadlines");
                }
                if (task->stats().max_response > bounds[i]) {
                    v.violations.push_back(
                        "rta: task " + view[i].name + " max_response " +
                        std::to_string(task->stats().max_response.ns()) +
                        " ns exceeds bound " + std::to_string(bounds[i].ns()) + " ns");
                }
            }
        } else if (m.task_deadline_misses == 0) {
            v.suspicious = true;  // RTA said no, the simulation sailed through
        }
    }
    return v;
}

SoakResult run_soak(const SoakConfig& cfg, parallel::ParallelStats* stats_out) {
    SoakResult res;
    res.cfg = cfg;
    std::optional<fault::FaultPlan> plan;
    if (!cfg.fault_plan.empty()) {
        std::string err;
        plan = fault::FaultPlan::parse(cfg.fault_plan, &err);
        SLM_ASSERT(plan.has_value(), err.empty() ? "bad fault plan" : err.c_str());
    }
    res.verdicts.resize(cfg.scenarios);
    // Whole scenarios shard across workers into seed-ordered slots: each
    // scenario owns a private kernel, so any jobs count merges to identical
    // verdicts (the for_each_index determinism contract).
    parallel::for_each_index(
        cfg.scenarios, cfg.jobs,
        [&](std::size_t i) {
            const Scenario sc = generate(cfg.gen, cfg.first_seed + i);
            res.verdicts[i] = run_scenario(sc, plan.has_value() ? &*plan : nullptr);
        },
        stats_out);
    return res;
}

// ---- aggregates ----

std::uint64_t SoakResult::total_jobs() const {
    std::uint64_t n = 0;
    for (const ScenarioVerdict& v : verdicts) {
        n += v.jobs_completed;
    }
    return n;
}

std::uint64_t SoakResult::total_violations() const {
    std::uint64_t n = 0;
    for (const ScenarioVerdict& v : verdicts) {
        n += v.violations.size();
    }
    return n;
}

std::uint64_t SoakResult::total_suspicious() const {
    std::uint64_t n = 0;
    for (const ScenarioVerdict& v : verdicts) {
        n += v.suspicious ? 1 : 0;
    }
    return n;
}

std::uint64_t SoakResult::total_deadline_misses() const {
    std::uint64_t n = 0;
    for (const ScenarioVerdict& v : verdicts) {
        n += v.deadline_misses;
    }
    return n;
}

std::uint64_t SoakResult::oracle_checked() const {
    std::uint64_t n = 0;
    for (const ScenarioVerdict& v : verdicts) {
        n += v.oracle_eligible ? 1 : 0;
    }
    return n;
}

std::uint64_t SoakResult::rta_schedulable_count() const {
    std::uint64_t n = 0;
    for (const ScenarioVerdict& v : verdicts) {
        n += v.rta_schedulable ? 1 : 0;
    }
    return n;
}

std::uint64_t SoakResult::hyperperiod_overflows() const {
    std::uint64_t n = 0;
    for (const ScenarioVerdict& v : verdicts) {
        n += v.hyperperiod_overflow ? 1 : 0;
    }
    return n;
}

const ScenarioVerdict* SoakResult::first_failure() const {
    for (const ScenarioVerdict& v : verdicts) {
        if (v.failed()) {
            return &v;
        }
    }
    return nullptr;
}

// ---- canonical JSON ----

void write_verdict_json(std::ostream& os, const ScenarioVerdict& v) {
    os << "{\"seed\":" << v.seed;
    os << ",\"name\":\"" << trace::json_escape(v.name) << '"';
    os << ",\"family\":\"" << trace::json_escape(v.family) << '"';
    os << ",\"expected_jobs\":" << v.expected_jobs;
    os << ",\"jobs_completed\":" << v.jobs_completed;
    os << ",\"deadline_misses\":" << v.deadline_misses;
    os << ",\"preemptions\":" << v.preemptions;
    os << ",\"faults_injected\":" << v.faults_injected;
    os << ",\"oracle_eligible\":" << (v.oracle_eligible ? "true" : "false");
    os << ",\"rta_schedulable\":" << (v.rta_schedulable ? "true" : "false");
    os << ",\"suspicious\":" << (v.suspicious ? "true" : "false");
    os << ",\"hyperperiod_overflow\":" << (v.hyperperiod_overflow ? "true" : "false");
    os << ",\"sim_ns\":" << v.sim_ns;
    os << ",\"violations\":[";
    for (std::size_t i = 0; i < v.violations.size(); ++i) {
        if (i != 0) {
            os << ',';
        }
        os << '"' << trace::json_escape(v.violations[i]) << '"';
    }
    os << "]}";
}

void write_soak_json(std::ostream& os, const SoakResult& res) {
    os << "{\"schema\":\"slm-soak-result-v1\"";
    os << ",\"first_seed\":" << res.cfg.first_seed;
    os << ",\"scenarios\":" << res.cfg.scenarios;
    os << ",\"jobs_target\":" << res.cfg.gen.jobs_target;
    os << ",\"fault_plan\":\"" << trace::json_escape(res.cfg.fault_plan) << '"';
    os << ",\"total_jobs\":" << res.total_jobs();
    os << ",\"violations\":" << res.total_violations();
    os << ",\"suspicious\":" << res.total_suspicious();
    os << ",\"deadline_misses\":" << res.total_deadline_misses();
    os << ",\"oracle_checked\":" << res.oracle_checked();
    os << ",\"rta_schedulable\":" << res.rta_schedulable_count();
    os << ",\"hyperperiod_overflows\":" << res.hyperperiod_overflows();
    os << ",\"verdicts\":[";
    for (std::size_t i = 0; i < res.verdicts.size(); ++i) {
        if (i != 0) {
            os << ',';
        }
        write_verdict_json(os, res.verdicts[i]);
    }
    os << "]}\n";
}

void register_soak_stats(obs::Registry& reg, const SoakResult& res) {
    const auto set = [&](const char* name, const char* help, double v) {
        reg.gauge(name, help, {}).set(v);
    };
    set("slm_soak_scenarios", "Scenarios run by the soak harness",
        static_cast<double>(res.verdicts.size()));
    set("slm_soak_jobs_total", "Jobs completed across all soak scenarios",
        static_cast<double>(res.total_jobs()));
    set("slm_soak_violations_total", "Invariant/oracle violations detected",
        static_cast<double>(res.total_violations()));
    set("slm_soak_suspicious_total",
        "RTA-unschedulable scenarios that missed no deadlines",
        static_cast<double>(res.total_suspicious()));
    set("slm_soak_oracle_checked", "Scenarios the RTA deadline oracle applied to",
        static_cast<double>(res.oracle_checked()));
    set("slm_soak_rta_schedulable", "Scenarios RTA proved schedulable",
        static_cast<double>(res.rta_schedulable_count()));
    set("slm_soak_deadline_misses_total", "Deadline misses across all scenarios",
        static_cast<double>(res.total_deadline_misses()));
    set("slm_soak_hyperperiod_overflows_total",
        "Task sets whose period LCM overflowed SimTime",
        static_cast<double>(res.hyperperiod_overflows()));
}

}  // namespace slm::soak
