#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel.hpp"
#include "rtos/core.hpp"
#include "soak/gen.hpp"

namespace slm::soak {

/// The soak engine (docs/soak-testing.md): run generated scenarios to
/// completion under streaming invariant monitors and the analytic
/// differential oracle, sharded across slm::parallel with a deterministic
/// seed-order merge. The canonical slm-soak-result-v1 JSON is byte-identical
/// at any --jobs count (ci/check_soak.sh pins this).

/// Everything the harness concluded about one scenario run. `violations` is
/// the hard-failure list — deterministic messages in detection order; an
/// empty list means every invariant and oracle check passed. `suspicious`
/// flags the soft finding (analytically unschedulable by RTA, yet zero
/// misses in simulation) that is logged but never fails a run: RTA with a
/// conservative blocking term is sufficient, not necessary.
struct ScenarioVerdict {
    std::uint64_t seed = 0;
    std::string name;
    std::string family;
    std::uint64_t expected_jobs = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t faults_injected = 0;
    bool oracle_eligible = false;
    bool rta_schedulable = false;
    bool suspicious = false;
    /// analysis::hyperperiod_checked() overflowed for this task set; the
    /// deadline oracle still ran (it needs response-time bounds, not the
    /// hyperperiod) but the overflow is surfaced as a diagnostic.
    bool hyperperiod_overflow = false;
    std::uint64_t sim_ns = 0;
    std::vector<std::string> violations;

    [[nodiscard]] bool failed() const { return !violations.empty(); }
};

struct SoakConfig {
    GenConfig gen;
    std::uint64_t first_seed = 1;
    std::size_t scenarios = 16;
    /// Worker threads for scenario sharding; 1 = serial (the determinism
    /// baseline), 0 = hardware concurrency.
    unsigned jobs = 1;
    /// Optional slm::fault plan text applied to every scenario (the injector
    /// is seeded with the scenario seed, so replay stays exact). Empty = no
    /// faults. This is the "planted defect" hook of ci/check_soak.sh.
    std::string fault_plan;
};

struct SoakResult {
    SoakConfig cfg;
    std::vector<ScenarioVerdict> verdicts;  ///< seed order, all jobs counts

    [[nodiscard]] std::uint64_t total_jobs() const;
    [[nodiscard]] std::uint64_t total_violations() const;
    [[nodiscard]] std::uint64_t total_suspicious() const;
    [[nodiscard]] std::uint64_t total_deadline_misses() const;
    [[nodiscard]] std::uint64_t oracle_checked() const;
    [[nodiscard]] std::uint64_t rta_schedulable_count() const;
    [[nodiscard]] std::uint64_t hyperperiod_overflows() const;
    /// Lowest-seed failing verdict, or nullptr when the soak is clean.
    [[nodiscard]] const ScenarioVerdict* first_failure() const;
};

/// Run one scenario to completion and judge it. `plan` (optional) attaches a
/// seeded fault injector to every PE. Deterministic: equal (scenario, plan)
/// inputs produce byte-identical verdicts.
[[nodiscard]] ScenarioVerdict run_scenario(const Scenario& sc,
                                           const fault::FaultPlan* plan = nullptr);

/// Generate and run cfg.scenarios scenarios (seeds first_seed ...
/// first_seed + scenarios - 1), sharded whole-scenario across
/// parallel::for_each_index into seed-ordered slots.
[[nodiscard]] SoakResult run_soak(const SoakConfig& cfg,
                                  parallel::ParallelStats* stats_out = nullptr);

/// Canonical single-line JSON. write_soak_json emits the
/// slm-soak-result-v1 envelope with per-scenario verdicts.
void write_verdict_json(std::ostream& os, const ScenarioVerdict& v);
void write_soak_json(std::ostream& os, const SoakResult& res);

/// Export the aggregates as plain slm_soak_* gauges (values copied at call
/// time; the result may die before the registry exports).
void register_soak_stats(obs::Registry& reg, const SoakResult& res);

/// Streaming invariant monitor attached to every PE core of a scenario run:
/// monotone observer timeline, per-channel send/recv and acquire/release
/// conservation (the lost-wakeup detector: a sent token nobody received, or
/// an ISR semaphore release never drained), and per-task bounded blocking
/// (mutex wait beyond the task's analytic response bound). Exposed for
/// tests; run_scenario owns the usual lifecycle.
class SoakMonitor final : public rtos::OsObserver {
public:
    /// Arm the wait-bound check for `task` (only meaningful when the
    /// scenario's RTA found it schedulable — the bound is its response time).
    void set_wait_bound(const std::string& task, SimTime bound);

    /// Append any invariant violations to `out`, deterministically ordered.
    void finish(std::vector<std::string>& out) const;

    void on_task_state(const rtos::Task& t, rtos::TaskState from, rtos::TaskState to,
                       SimTime now) override;
    void on_preempt(const rtos::Task& p, const rtos::Task& by, SimTime now) override;
    void on_completion(const rtos::Task& t, SimTime response, bool missed,
                       SimTime now) override;
    void on_isr(const std::string& irq, SimTime now) override;
    void on_resource_block(const rtos::Task& b, const rtos::Task& h,
                           const std::string& r, SimTime now) override;
    void on_resource_acquire(const rtos::Task& t, const std::string& r,
                             SimTime waited, SimTime now) override;
    void on_resource_release(const rtos::Task& t, const std::string& r,
                             SimTime now) override;
    void on_channel_op(const std::string& channel, const char* op,
                       SimTime now) override;
    void on_deadline_miss(const rtos::Task& t, SimTime overrun, SimTime now) override;

private:
    struct ChannelOps {
        std::uint64_t sends = 0;
        std::uint64_t recvs = 0;
        std::uint64_t acquires = 0;
        std::uint64_t releases = 0;
    };

    void stamp(SimTime now);

    SimTime last_{};
    std::uint64_t monotone_violations_ = 0;
    std::string first_monotone_;
    std::map<std::string, ChannelOps> channels_;
    std::map<std::string, SimTime> wait_bounds_;
    std::vector<std::string> wait_violations_;  ///< first few, verbatim
    std::uint64_t wait_violation_count_ = 0;
};

}  // namespace slm::soak
