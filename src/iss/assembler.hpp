#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "iss/isa.hpp"

namespace slm::iss {

/// An assembled program: instruction memory plus the resolved label map.
struct Program {
    std::vector<Instr> code;
    std::map<std::string, std::int32_t> labels;

    [[nodiscard]] bool has_label(const std::string& name) const {
        return labels.count(name) != 0;
    }
    [[nodiscard]] std::int32_t label(const std::string& name) const {
        return labels.at(name);
    }
};

struct AsmError {
    int line = 0;
    std::string message;
};

struct AsmResult {
    Program program;
    std::vector<AsmError> errors;

    [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// Two-pass assembler for SLM32 text assembly.
///
/// Syntax:
///   ; comment              (also //)
///   label:
///     ldi  r1, 160         ; registers r0..r15, aliases sp (r14) and lr (r15)
///     ld   r2, r1, 0       ; rd, base, offset
///     st   r1, 4, r2       ; base, offset, src
///     mac  r3, r2, r2
///     addi r1, r1, -1
///     bne  r1, r0, label   ; branch targets: labels or absolute numbers
///     sys  3
///     halt
///
/// Immediates accept decimal and 0x-prefixed hex. Branch/jump targets may be
/// labels (resolved in pass two) or literal instruction addresses.
[[nodiscard]] AsmResult assemble(std::string_view source);

}  // namespace slm::iss
