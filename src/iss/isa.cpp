#include "iss/isa.hpp"

#include <cstdio>

namespace slm::iss {

const char* to_string(Op op) {
    switch (op) {
        case Op::Nop: return "nop";
        case Op::Ldi: return "ldi";
        case Op::Mov: return "mov";
        case Op::Add: return "add";
        case Op::Sub: return "sub";
        case Op::Mul: return "mul";
        case Op::Mac: return "mac";
        case Op::And: return "and";
        case Op::Or: return "or";
        case Op::Xor: return "xor";
        case Op::Shl: return "shl";
        case Op::Shr: return "shr";
        case Op::Div: return "div";
        case Op::Rem: return "rem";
        case Op::Addi: return "addi";
        case Op::Ld: return "ld";
        case Op::St: return "st";
        case Op::Beq: return "beq";
        case Op::Bne: return "bne";
        case Op::Blt: return "blt";
        case Op::Bge: return "bge";
        case Op::Jmp: return "jmp";
        case Op::Jal: return "jal";
        case Op::Jr: return "jr";
        case Op::Sys: return "sys";
        case Op::Halt: return "halt";
    }
    return "?";
}

std::uint64_t encode(const Instr& i) {
    return (static_cast<std::uint64_t>(i.op) << 56U) |
           (static_cast<std::uint64_t>(i.rd & 0xFU) << 52U) |
           (static_cast<std::uint64_t>(i.ra & 0xFU) << 48U) |
           (static_cast<std::uint64_t>(i.rb & 0xFU) << 44U) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(i.imm));
}

Instr decode(std::uint64_t word) {
    Instr i;
    const auto opcode = static_cast<std::uint8_t>(word >> 56U);
    i.op = opcode <= static_cast<std::uint8_t>(Op::Halt) ? static_cast<Op>(opcode)
                                                         : Op::Halt;
    i.rd = static_cast<std::uint8_t>((word >> 52U) & 0xFU);
    i.ra = static_cast<std::uint8_t>((word >> 48U) & 0xFU);
    i.rb = static_cast<std::uint8_t>((word >> 44U) & 0xFU);
    i.imm = static_cast<std::int32_t>(static_cast<std::uint32_t>(word & 0xFFFFFFFFU));
    return i;
}

int cycle_cost(Op op) {
    switch (op) {
        case Op::Nop:
        case Op::Ldi:
        case Op::Mov:
        case Op::Add:
        case Op::Sub:
        case Op::And:
        case Op::Or:
        case Op::Xor:
        case Op::Shl:
        case Op::Shr:
        case Op::Addi:
        case Op::Halt:
            return 1;
        case Op::Mul:
        case Op::Mac:
            return 4;
        case Op::Div:
        case Op::Rem:
            return 16;
        case Op::Ld:
        case Op::St:
            return 3;
        case Op::Beq:
        case Op::Bne:
        case Op::Blt:
        case Op::Bge:
        case Op::Jmp:
        case Op::Jal:
        case Op::Jr:
            return 2;
        case Op::Sys:
            return 10;
    }
    return 1;
}

std::string disassemble(const Instr& i) {
    char buf[64];
    const char* m = to_string(i.op);
    switch (i.op) {
        case Op::Nop:
        case Op::Halt:
            std::snprintf(buf, sizeof buf, "%s", m);
            break;
        case Op::Ldi:
            std::snprintf(buf, sizeof buf, "%s r%d, %d", m, i.rd, i.imm);
            break;
        case Op::Mov:
            std::snprintf(buf, sizeof buf, "%s r%d, r%d", m, i.rd, i.ra);
            break;
        case Op::Add:
        case Op::Sub:
        case Op::Mul:
        case Op::Mac:
        case Op::And:
        case Op::Or:
        case Op::Xor:
        case Op::Shl:
        case Op::Shr:
        case Op::Div:
        case Op::Rem:
            std::snprintf(buf, sizeof buf, "%s r%d, r%d, r%d", m, i.rd, i.ra, i.rb);
            break;
        case Op::Addi:
        case Op::Ld:
            std::snprintf(buf, sizeof buf, "%s r%d, r%d, %d", m, i.rd, i.ra, i.imm);
            break;
        case Op::St:
            std::snprintf(buf, sizeof buf, "%s r%d, %d, r%d", m, i.ra, i.imm, i.rb);
            break;
        case Op::Beq:
        case Op::Bne:
        case Op::Blt:
        case Op::Bge:
            std::snprintf(buf, sizeof buf, "%s r%d, r%d, %d", m, i.ra, i.rb, i.imm);
            break;
        case Op::Jmp:
            std::snprintf(buf, sizeof buf, "%s %d", m, i.imm);
            break;
        case Op::Jal:
            std::snprintf(buf, sizeof buf, "%s r%d, %d", m, i.rd, i.imm);
            break;
        case Op::Jr:
            std::snprintf(buf, sizeof buf, "%s r%d", m, i.ra);
            break;
        case Op::Sys:
            std::snprintf(buf, sizeof buf, "%s %d", m, i.imm);
            break;
    }
    return buf;
}

}  // namespace slm::iss
