#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "iss/isa.hpp"

namespace slm::iss {

class SuperblockEngine;

/// Reason the CPU stopped after a step.
enum class Trap : std::uint8_t {
    None,   ///< instruction retired normally
    Sys,    ///< SYS executed: service number in StepResult::sys_no
    Halt,   ///< HALT executed
    Fault,  ///< bad pc or memory access; detail in Cpu::fault_message()
};

struct StepResult {
    Trap trap = Trap::None;
    int cycles = 0;
    std::int32_t sys_no = 0;
};

/// Aggregate result of Cpu::run(): like StepResult but with a 64-bit cycle
/// count, so long soak budgets (> 2^31 cycles) cannot overflow the aggregate.
struct RunResult {
    Trap trap = Trap::None;
    std::uint64_t cycles = 0;
    std::int32_t sys_no = 0;
};

/// Execution backend behind Cpu::run(). Both produce byte-identical
/// architectural results (ci/check_iss.sh enforces this in lockstep); the
/// superblock engine is just faster.
enum class IssBackend : std::uint8_t {
    Auto,        ///< Superblock unless the SLM_ISS_REFERENCE env var is set
    Reference,   ///< one step() per instruction through the decode switch
    Superblock,  ///< decoded-superblock engine with threaded dispatch
};

/// Resolve Auto against the environment: setting SLM_ISS_REFERENCE to any
/// non-empty value other than "0" forces the reference interpreter (mirrors
/// SLM_FORCE_UCONTEXT for the coroutine backend).
[[nodiscard]] IssBackend resolve_iss_backend(IssBackend requested);

/// Architectural register state of one hardware context. The guest kernel
/// swaps these in and out of the CPU on context switches, exactly like a real
/// RTOS port's context-switch assembly saves and restores the register file.
struct Context {
    std::array<std::int32_t, kNumRegs> regs{};
    std::int32_t pc = 0;
};

/// SLM32 instruction-set simulator core. Pure and deterministic: no coupling
/// to the discrete-event kernel — the caller (GuestKernel / IssPe) decides how
/// executed cycles map to simulated time.
class Cpu {
public:
    /// `data_words` is the size of the word-addressed data memory.
    explicit Cpu(std::vector<Instr> program, std::size_t data_words = 65536,
                 IssBackend backend = IssBackend::Auto);
    ~Cpu();
    Cpu(const Cpu& other);
    Cpu& operator=(const Cpu& other);
    Cpu(Cpu&& other) noexcept;
    Cpu& operator=(Cpu&& other) noexcept;

    /// Execute one instruction through the reference interpreter. On Trap::Sys
    /// the pc already points past the SYS instruction; resuming simply
    /// continues execution. Always available regardless of backend.
    StepResult step();

    /// Run up to `max_cycles` cycles or until a trap, whichever comes first
    /// (overshooting by at most the one in-flight instruction). Returns the
    /// cycles actually consumed and the trap (None if the budget ran out
    /// mid-stream). Dispatches to the selected backend.
    RunResult run(std::uint64_t max_cycles);

    /// run() pinned to the reference interpreter, regardless of backend.
    RunResult run_reference(std::uint64_t max_cycles);

    // ---- backend selection ----
    [[nodiscard]] IssBackend backend() const { return backend_; }
    void set_backend(IssBackend backend) { backend_ = resolve_iss_backend(backend); }
    /// The superblock engine, if one has been built (diagnostics / stats).
    [[nodiscard]] const SuperblockEngine* engine() const { return engine_.get(); }

    // ---- architectural state ----
    [[nodiscard]] std::int32_t reg(int idx) const { return ctx_.regs.at(static_cast<std::size_t>(idx)); }
    void set_reg(int idx, std::int32_t v) { ctx_.regs.at(static_cast<std::size_t>(idx)) = v; }
    [[nodiscard]] std::int32_t pc() const { return ctx_.pc; }
    void set_pc(std::int32_t pc) { ctx_.pc = pc; }

    [[nodiscard]] const Context& context() const { return ctx_; }
    void load_context(const Context& c) { ctx_ = c; }

    // ---- data memory (host-facing accessors) ----
    /// Checked host access: false (and no side effect) when `addr` is out of
    /// range, sharing the bounds rule with guest Ld/St.
    [[nodiscard]] bool try_load(std::uint32_t addr, std::int32_t& out) const;
    [[nodiscard]] bool try_store(std::uint32_t addr, std::int32_t value);
    /// Convenience forms: out-of-range access records a fault (see
    /// fault_message()) instead of throwing; load returns 0, store is a no-op.
    [[nodiscard]] std::int32_t load(std::uint32_t addr);
    void store(std::uint32_t addr, std::int32_t value);
    [[nodiscard]] std::size_t mem_words() const { return mem_.size(); }

    // ---- program memory ----
    [[nodiscard]] const std::vector<Instr>& program() const { return prog_; }

    // ---- stats / diagnostics ----
    [[nodiscard]] std::uint64_t retired() const { return retired_; }
    [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
    [[nodiscard]] const std::string& fault_message() const { return fault_; }

private:
    friend class SuperblockEngine;

    [[nodiscard]] bool mem_ok(std::int64_t addr);

    std::vector<Instr> prog_;
    std::vector<std::int32_t> mem_;
    Context ctx_;
    std::uint64_t retired_ = 0;
    std::uint64_t cycles_ = 0;
    std::string fault_;
    IssBackend backend_ = IssBackend::Superblock;
    /// Built lazily on the first Superblock run(); holds a reference to this
    /// Cpu, so copy/move reset it (it is rebuilt on demand).
    std::unique_ptr<SuperblockEngine> engine_;
};

}  // namespace slm::iss
