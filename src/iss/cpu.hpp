#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "iss/isa.hpp"

namespace slm::iss {

/// Reason the CPU stopped after a step.
enum class Trap : std::uint8_t {
    None,   ///< instruction retired normally
    Sys,    ///< SYS executed: service number in StepResult::sys_no
    Halt,   ///< HALT executed
    Fault,  ///< bad pc or memory access; detail in Cpu::fault_message()
};

struct StepResult {
    Trap trap = Trap::None;
    int cycles = 0;
    std::int32_t sys_no = 0;
};

/// Architectural register state of one hardware context. The guest kernel
/// swaps these in and out of the CPU on context switches, exactly like a real
/// RTOS port's context-switch assembly saves and restores the register file.
struct Context {
    std::array<std::int32_t, kNumRegs> regs{};
    std::int32_t pc = 0;
};

/// SLM32 instruction-set simulator core. Pure and deterministic: no coupling
/// to the discrete-event kernel — the caller (GuestKernel / IssPe) decides how
/// executed cycles map to simulated time.
class Cpu {
public:
    /// `data_words` is the size of the word-addressed data memory.
    explicit Cpu(std::vector<Instr> program, std::size_t data_words = 65536);

    /// Execute one instruction. On Trap::Sys the pc already points past the
    /// SYS instruction; resuming simply continues execution.
    StepResult step();

    /// Run up to `max_cycles` cycles or until a trap, whichever comes first.
    /// Returns the cycles actually consumed and the trap (None if the budget
    /// ran out mid-stream).
    StepResult run(std::uint64_t max_cycles);

    // ---- architectural state ----
    [[nodiscard]] std::int32_t reg(int idx) const { return ctx_.regs.at(static_cast<std::size_t>(idx)); }
    void set_reg(int idx, std::int32_t v) { ctx_.regs.at(static_cast<std::size_t>(idx)) = v; }
    [[nodiscard]] std::int32_t pc() const { return ctx_.pc; }
    void set_pc(std::int32_t pc) { ctx_.pc = pc; }

    [[nodiscard]] const Context& context() const { return ctx_; }
    void load_context(const Context& c) { ctx_ = c; }

    // ---- data memory ----
    [[nodiscard]] std::int32_t load(std::uint32_t addr) const;
    void store(std::uint32_t addr, std::int32_t value);
    [[nodiscard]] std::size_t mem_words() const { return mem_.size(); }

    // ---- program memory ----
    [[nodiscard]] const std::vector<Instr>& program() const { return prog_; }

    // ---- stats / diagnostics ----
    [[nodiscard]] std::uint64_t retired() const { return retired_; }
    [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
    [[nodiscard]] const std::string& fault_message() const { return fault_; }

private:
    [[nodiscard]] bool mem_ok(std::int64_t addr);

    std::vector<Instr> prog_;
    std::vector<std::int32_t> mem_;
    Context ctx_;
    std::uint64_t retired_ = 0;
    std::uint64_t cycles_ = 0;
    std::string fault_;
};

}  // namespace slm::iss
