#include "iss/assembler.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <optional>
#include <sstream>

namespace slm::iss {

namespace {

struct Operand {
    enum class Kind { Reg, Imm, Label } kind = Kind::Imm;
    int value = 0;        // register index or immediate
    std::string label;    // for Kind::Label
};

std::string to_lower(std::string s) {
    for (char& c : s) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return s;
}

std::optional<Op> mnemonic_of(const std::string& s) {
    static const std::array<Op, 26> kOps = {
        Op::Nop, Op::Ldi, Op::Mov, Op::Add,  Op::Sub, Op::Mul, Op::Mac, Op::And,
        Op::Or,  Op::Xor, Op::Shl, Op::Shr,  Op::Div, Op::Rem, Op::Addi, Op::Ld,
        Op::St,  Op::Beq, Op::Bne, Op::Blt,  Op::Bge, Op::Jmp, Op::Jal, Op::Jr,
        Op::Sys, Op::Halt};
    for (const Op op : kOps) {
        if (s == to_string(op)) {
            return op;
        }
    }
    return std::nullopt;
}

std::optional<int> parse_register(const std::string& tok) {
    if (tok == "sp") {
        return 14;
    }
    if (tok == "lr") {
        return 15;
    }
    if (tok.size() >= 2 && tok[0] == 'r') {
        int idx = 0;
        const auto [p, ec] = std::from_chars(tok.data() + 1, tok.data() + tok.size(), idx);
        if (ec == std::errc{} && p == tok.data() + tok.size() && idx >= 0 &&
            idx < kNumRegs) {
            return idx;
        }
    }
    return std::nullopt;
}

std::optional<std::int32_t> parse_number(const std::string& tok) {
    std::string_view sv = tok;
    bool neg = false;
    if (!sv.empty() && (sv[0] == '-' || sv[0] == '+')) {
        neg = sv[0] == '-';
        sv.remove_prefix(1);
    }
    int base = 10;
    if (sv.size() > 2 && sv[0] == '0' && (sv[1] == 'x' || sv[1] == 'X')) {
        base = 16;
        sv.remove_prefix(2);
    }
    std::int64_t v = 0;
    const auto [p, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), v, base);
    if (ec != std::errc{} || p != sv.data() + sv.size()) {
        return std::nullopt;
    }
    return static_cast<std::int32_t>(neg ? -v : v);
}

/// Split a line into mnemonic + comma-separated operand tokens; strips
/// comments (';' and '//').
struct ParsedLine {
    std::string label;
    std::string mnemonic;
    std::vector<std::string> operands;
};

ParsedLine split_line(std::string line) {
    if (const auto pos = line.find(';'); pos != std::string::npos) {
        line.erase(pos);
    }
    if (const auto pos = line.find("//"); pos != std::string::npos) {
        line.erase(pos);
    }
    ParsedLine out;
    std::string work;
    // label?
    if (const auto colon = line.find(':'); colon != std::string::npos) {
        std::string lbl = line.substr(0, colon);
        // trim
        while (!lbl.empty() && std::isspace(static_cast<unsigned char>(lbl.front()))) {
            lbl.erase(lbl.begin());
        }
        while (!lbl.empty() && std::isspace(static_cast<unsigned char>(lbl.back()))) {
            lbl.pop_back();
        }
        out.label = lbl;
        work = line.substr(colon + 1);
    } else {
        work = line;
    }
    std::istringstream is{work};
    is >> out.mnemonic;
    std::string rest;
    std::getline(is, rest);
    std::string tok;
    for (const char c : rest) {
        if (c == ',') {
            if (!tok.empty()) {
                out.operands.push_back(tok);
                tok.clear();
            }
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            tok += c;
        }
    }
    if (!tok.empty()) {
        out.operands.push_back(tok);
    }
    return out;
}

/// Expected operand pattern per opcode: R = register, I = immediate-or-label.
std::string_view pattern_of(Op op) {
    switch (op) {
        case Op::Nop:
        case Op::Halt: return "";
        case Op::Ldi: return "RI";
        case Op::Mov: return "RR";
        case Op::Add:
        case Op::Sub:
        case Op::Mul:
        case Op::Mac:
        case Op::And:
        case Op::Or:
        case Op::Xor:
        case Op::Shl:
        case Op::Shr:
        case Op::Div:
        case Op::Rem: return "RRR";
        case Op::Addi:
        case Op::Ld: return "RRI";
        case Op::St: return "RIR";
        case Op::Beq:
        case Op::Bne:
        case Op::Blt:
        case Op::Bge: return "RRI";
        case Op::Jmp: return "I";
        case Op::Jal: return "RI";
        case Op::Jr: return "R";
        case Op::Sys: return "I";
    }
    return "";
}

}  // namespace

AsmResult assemble(std::string_view source) {
    AsmResult result;
    struct Pending {
        std::size_t instr_index;
        std::string label;
        int line;
    };
    std::vector<Pending> fixups;

    int line_no = 0;
    std::istringstream stream{std::string(source)};
    std::string line;
    while (std::getline(stream, line)) {
        ++line_no;
        const ParsedLine pl = split_line(line);
        if (!pl.label.empty()) {
            if (result.program.has_label(pl.label)) {
                result.errors.push_back({line_no, "duplicate label '" + pl.label + "'"});
            } else {
                result.program.labels[pl.label] =
                    static_cast<std::int32_t>(result.program.code.size());
            }
        }
        if (pl.mnemonic.empty()) {
            continue;
        }
        const auto op = mnemonic_of(to_lower(pl.mnemonic));
        if (!op) {
            result.errors.push_back({line_no, "unknown mnemonic '" + pl.mnemonic + "'"});
            continue;
        }
        const std::string_view pattern = pattern_of(*op);
        if (pl.operands.size() != pattern.size()) {
            result.errors.push_back(
                {line_no, std::string(to_string(*op)) + " expects " +
                              std::to_string(pattern.size()) + " operands, got " +
                              std::to_string(pl.operands.size())});
            continue;
        }
        Instr instr;
        instr.op = *op;
        bool bad = false;
        int reg_slot = 0;
        for (std::size_t i = 0; i < pattern.size() && !bad; ++i) {
            const std::string tok = to_lower(pl.operands[i]);
            if (pattern[i] == 'R') {
                const auto reg = parse_register(tok);
                if (!reg) {
                    result.errors.push_back({line_no, "bad register '" + tok + "'"});
                    bad = true;
                    break;
                }
                // Register slot assignment follows the disassembly layout.
                switch (instr.op) {
                    case Op::Mov:
                        (reg_slot == 0 ? instr.rd : instr.ra) =
                            static_cast<std::uint8_t>(*reg);
                        break;
                    case Op::St:
                        (reg_slot == 0 ? instr.ra : instr.rb) =
                            static_cast<std::uint8_t>(*reg);
                        break;
                    case Op::Beq:
                    case Op::Bne:
                    case Op::Blt:
                    case Op::Bge:
                        (reg_slot == 0 ? instr.ra : instr.rb) =
                            static_cast<std::uint8_t>(*reg);
                        break;
                    case Op::Jr:
                        instr.ra = static_cast<std::uint8_t>(*reg);
                        break;
                    default:
                        // rd, ra, rb in order
                        (reg_slot == 0 ? instr.rd : (reg_slot == 1 ? instr.ra : instr.rb)) =
                            static_cast<std::uint8_t>(*reg);
                        break;
                }
                ++reg_slot;
            } else {  // immediate or label
                if (const auto num = parse_number(tok)) {
                    instr.imm = *num;
                } else {
                    fixups.push_back({result.program.code.size(), pl.operands[i], line_no});
                }
            }
        }
        if (!bad) {
            result.program.code.push_back(instr);
        }
    }

    for (const Pending& f : fixups) {
        if (!result.program.has_label(f.label)) {
            result.errors.push_back({f.line, "undefined label '" + f.label + "'"});
            continue;
        }
        result.program.code[f.instr_index].imm = result.program.label(f.label);
    }
    return result;
}

}  // namespace slm::iss
