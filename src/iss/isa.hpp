#pragma once

#include <cstdint>
#include <string>

namespace slm::iss {

/// SLM32: a small 32-bit RISC instruction set standing in for the paper's
/// Motorola DSP56600 target. 16 general-purpose registers, Harvard layout
/// (separate instruction and data memories), word-addressed data memory, and
/// a MAC instruction because the vocoder workload is multiply-accumulate
/// dominated. Each instruction carries a fixed cycle cost; the ISS advances
/// simulated time by executed cycles, which is what makes the implementation
/// model slow to simulate but delay-accurate (paper Table 1).
enum class Op : std::uint8_t {
    Nop,
    Ldi,   ///< rd = imm
    Mov,   ///< rd = ra
    Add,   ///< rd = ra + rb
    Sub,   ///< rd = ra - rb
    Mul,   ///< rd = ra * rb
    Mac,   ///< rd = rd + ra * rb
    And,   ///< rd = ra & rb
    Or,    ///< rd = ra | rb
    Xor,   ///< rd = ra ^ rb
    Shl,   ///< rd = ra << (rb & 31)
    Shr,   ///< rd = (unsigned)ra >> (rb & 31)
    Div,   ///< rd = ra / rb (signed; rb == 0 faults; INT_MIN/-1 = INT_MIN)
    Rem,   ///< rd = ra % rb (signed; rb == 0 faults; INT_MIN%-1 = 0)
    Addi,  ///< rd = ra + imm
    Ld,    ///< rd = mem[ra + imm]
    St,    ///< mem[ra + imm] = rb
    Beq,   ///< if (ra == rb) pc = imm
    Bne,   ///< if (ra != rb) pc = imm
    Blt,   ///< if (ra < rb) pc = imm   (signed)
    Bge,   ///< if (ra >= rb) pc = imm  (signed)
    Jmp,   ///< pc = imm
    Jal,   ///< rd = pc + 1; pc = imm
    Jr,    ///< pc = ra
    Sys,   ///< trap to the guest kernel, service number imm
    Halt,  ///< stop the current task
};

inline constexpr int kNumRegs = 16;

[[nodiscard]] const char* to_string(Op op);

/// Decoded instruction. The canonical in-memory form; encode()/decode() map
/// it to a 64-bit word ([op:8][rd:4][ra:4][rb:4][zero:12][imm:32]).
struct Instr {
    Op op = Op::Nop;
    std::uint8_t rd = 0;
    std::uint8_t ra = 0;
    std::uint8_t rb = 0;
    std::int32_t imm = 0;

    friend bool operator==(const Instr&, const Instr&) = default;
};

/// Pack an instruction into its 64-bit binary form.
[[nodiscard]] std::uint64_t encode(const Instr& i);

/// Unpack a 64-bit word. Words with an out-of-range opcode decode to Halt —
/// running off into garbage must stop the machine, not wander.
[[nodiscard]] Instr decode(std::uint64_t word);

/// Fixed cycle cost of one instruction (branch costs assume taken; the CPU
/// charges one cycle less for untaken branches).
[[nodiscard]] int cycle_cost(Op op);

/// Render an instruction in assembler syntax, e.g. "addi r1, r1, -1".
[[nodiscard]] std::string disassemble(const Instr& i);

}  // namespace slm::iss
