#include "iss/cpu.hpp"

#include <limits>

namespace slm::iss {

Cpu::Cpu(std::vector<Instr> program, std::size_t data_words)
    : prog_(std::move(program)), mem_(data_words, 0) {}

bool Cpu::mem_ok(std::int64_t addr) {
    if (addr < 0 || addr >= static_cast<std::int64_t>(mem_.size())) {
        fault_ = "data access out of range: " + std::to_string(addr);
        return false;
    }
    return true;
}

std::int32_t Cpu::load(std::uint32_t addr) const {
    return mem_.at(addr);
}

void Cpu::store(std::uint32_t addr, std::int32_t value) {
    mem_.at(addr) = value;
}

StepResult Cpu::step() {
    if (ctx_.pc < 0 || ctx_.pc >= static_cast<std::int32_t>(prog_.size())) {
        fault_ = "pc out of range: " + std::to_string(ctx_.pc);
        return {Trap::Fault, 0, 0};
    }
    const Instr i = prog_[static_cast<std::size_t>(ctx_.pc)];
    auto& r = ctx_.regs;
    const auto rd = static_cast<std::size_t>(i.rd);
    const auto ra = static_cast<std::size_t>(i.ra);
    const auto rb = static_cast<std::size_t>(i.rb);
    int cost = cycle_cost(i.op);
    std::int32_t next = ctx_.pc + 1;
    Trap trap = Trap::None;

    // Guest arithmetic wraps modulo 2^32 (two's complement): compute through
    // uint32_t to keep deliberate guest overflow (hashes, accumulators) well
    // defined on the host.
    const auto wrap = [](std::uint32_t v) { return static_cast<std::int32_t>(v); };
    const auto u = [&r](std::size_t idx) {
        return static_cast<std::uint32_t>(r[idx]);
    };

    switch (i.op) {
        case Op::Nop: break;
        case Op::Ldi: r[rd] = i.imm; break;
        case Op::Mov: r[rd] = r[ra]; break;
        case Op::Add: r[rd] = wrap(u(ra) + u(rb)); break;
        case Op::Sub: r[rd] = wrap(u(ra) - u(rb)); break;
        case Op::Mul: r[rd] = wrap(u(ra) * u(rb)); break;
        case Op::Mac: r[rd] = wrap(u(rd) + u(ra) * u(rb)); break;
        case Op::And: r[rd] = r[ra] & r[rb]; break;
        case Op::Or: r[rd] = r[ra] | r[rb]; break;
        case Op::Xor: r[rd] = r[ra] ^ r[rb]; break;
        case Op::Shl: r[rd] = static_cast<std::int32_t>(static_cast<std::uint32_t>(r[ra])
                                                        << (r[rb] & 31)); break;
        case Op::Shr: r[rd] = static_cast<std::int32_t>(static_cast<std::uint32_t>(r[ra]) >>
                                                        (r[rb] & 31)); break;
        case Op::Div:
        case Op::Rem: {
            if (r[rb] == 0) {
                fault_ = "division by zero at pc " + std::to_string(ctx_.pc);
                return {Trap::Fault, 0, 0};
            }
            if (r[ra] == std::numeric_limits<std::int32_t>::min() && r[rb] == -1) {
                // Overflow case defined architecturally (no trap).
                r[rd] = i.op == Op::Div ? r[ra] : 0;
            } else {
                r[rd] = i.op == Op::Div ? r[ra] / r[rb] : r[ra] % r[rb];
            }
            break;
        }
        case Op::Addi:
            r[rd] = wrap(u(ra) + static_cast<std::uint32_t>(i.imm));
            break;
        case Op::Ld: {
            const std::int64_t addr = static_cast<std::int64_t>(r[ra]) + i.imm;
            if (!mem_ok(addr)) {
                return {Trap::Fault, 0, 0};
            }
            r[rd] = mem_[static_cast<std::size_t>(addr)];
            break;
        }
        case Op::St: {
            const std::int64_t addr = static_cast<std::int64_t>(r[ra]) + i.imm;
            if (!mem_ok(addr)) {
                return {Trap::Fault, 0, 0};
            }
            mem_[static_cast<std::size_t>(addr)] = r[rb];
            break;
        }
        case Op::Beq:
            if (r[ra] == r[rb]) { next = i.imm; } else { --cost; }
            break;
        case Op::Bne:
            if (r[ra] != r[rb]) { next = i.imm; } else { --cost; }
            break;
        case Op::Blt:
            if (r[ra] < r[rb]) { next = i.imm; } else { --cost; }
            break;
        case Op::Bge:
            if (r[ra] >= r[rb]) { next = i.imm; } else { --cost; }
            break;
        case Op::Jmp: next = i.imm; break;
        case Op::Jal: r[rd] = ctx_.pc + 1; next = i.imm; break;
        case Op::Jr: next = r[ra]; break;
        case Op::Sys: trap = Trap::Sys; break;
        case Op::Halt: trap = Trap::Halt; next = ctx_.pc; break;  // stay put
    }

    ctx_.pc = next;
    ++retired_;
    cycles_ += static_cast<std::uint64_t>(cost);
    return {trap, cost, i.op == Op::Sys ? i.imm : 0};
}

StepResult Cpu::run(std::uint64_t max_cycles) {
    StepResult agg{};
    while (static_cast<std::uint64_t>(agg.cycles) < max_cycles) {
        const StepResult r = step();
        agg.cycles += r.cycles;
        if (r.trap != Trap::None) {
            agg.trap = r.trap;
            agg.sys_no = r.sys_no;
            return agg;
        }
    }
    return agg;
}

}  // namespace slm::iss
