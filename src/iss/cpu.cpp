#include "iss/cpu.hpp"

#include <cstdlib>
#include <limits>

#include "iss/engine.hpp"

namespace slm::iss {

IssBackend resolve_iss_backend(IssBackend requested) {
    if (requested != IssBackend::Auto) {
        return requested;
    }
    const char* env = std::getenv("SLM_ISS_REFERENCE");
    if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
        return IssBackend::Reference;
    }
    return IssBackend::Superblock;
}

Cpu::Cpu(std::vector<Instr> program, std::size_t data_words, IssBackend backend)
    : prog_(std::move(program)),
      mem_(data_words, 0),
      backend_(resolve_iss_backend(backend)) {}

Cpu::~Cpu() = default;

Cpu::Cpu(const Cpu& other)
    : prog_(other.prog_),
      mem_(other.mem_),
      ctx_(other.ctx_),
      retired_(other.retired_),
      cycles_(other.cycles_),
      fault_(other.fault_),
      backend_(other.backend_) {}

Cpu& Cpu::operator=(const Cpu& other) {
    if (this != &other) {
        prog_ = other.prog_;
        mem_ = other.mem_;
        ctx_ = other.ctx_;
        retired_ = other.retired_;
        cycles_ = other.cycles_;
        fault_ = other.fault_;
        backend_ = other.backend_;
        engine_.reset();  // held a reference to the old program/memory
    }
    return *this;
}

Cpu::Cpu(Cpu&& other) noexcept
    : prog_(std::move(other.prog_)),
      mem_(std::move(other.mem_)),
      ctx_(other.ctx_),
      retired_(other.retired_),
      cycles_(other.cycles_),
      fault_(std::move(other.fault_)),
      backend_(other.backend_) {
    other.engine_.reset();  // its engine referenced the moved-from Cpu
}

Cpu& Cpu::operator=(Cpu&& other) noexcept {
    if (this != &other) {
        prog_ = std::move(other.prog_);
        mem_ = std::move(other.mem_);
        ctx_ = other.ctx_;
        retired_ = other.retired_;
        cycles_ = other.cycles_;
        fault_ = std::move(other.fault_);
        backend_ = other.backend_;
        engine_.reset();
        other.engine_.reset();
    }
    return *this;
}

bool Cpu::mem_ok(std::int64_t addr) {
    if (addr < 0 || addr >= static_cast<std::int64_t>(mem_.size())) {
        fault_ = "data access out of range: " + std::to_string(addr);
        return false;
    }
    return true;
}

bool Cpu::try_load(std::uint32_t addr, std::int32_t& out) const {
    if (addr >= mem_.size()) {
        return false;
    }
    out = mem_[addr];
    return true;
}

bool Cpu::try_store(std::uint32_t addr, std::int32_t value) {
    if (addr >= mem_.size()) {
        return false;
    }
    mem_[addr] = value;
    return true;
}

std::int32_t Cpu::load(std::uint32_t addr) {
    std::int32_t out = 0;
    if (!try_load(addr, out)) {
        fault_ = "host data access out of range: " + std::to_string(addr);
        return 0;
    }
    return out;
}

void Cpu::store(std::uint32_t addr, std::int32_t value) {
    if (!try_store(addr, value)) {
        fault_ = "host data access out of range: " + std::to_string(addr);
    }
}

StepResult Cpu::step() {
    if (ctx_.pc < 0 || ctx_.pc >= static_cast<std::int32_t>(prog_.size())) {
        fault_ = "pc out of range: " + std::to_string(ctx_.pc);
        return {Trap::Fault, 0, 0};
    }
    const Instr i = prog_[static_cast<std::size_t>(ctx_.pc)];
    auto& r = ctx_.regs;
    const auto rd = static_cast<std::size_t>(i.rd);
    const auto ra = static_cast<std::size_t>(i.ra);
    const auto rb = static_cast<std::size_t>(i.rb);
    int cost = cycle_cost(i.op);
    std::int32_t next = ctx_.pc + 1;
    Trap trap = Trap::None;

    // Guest arithmetic wraps modulo 2^32 (two's complement): compute through
    // uint32_t to keep deliberate guest overflow (hashes, accumulators) well
    // defined on the host.
    const auto wrap = [](std::uint32_t v) { return static_cast<std::int32_t>(v); };
    const auto u = [&r](std::size_t idx) {
        return static_cast<std::uint32_t>(r[idx]);
    };

    switch (i.op) {
        case Op::Nop: break;
        case Op::Ldi: r[rd] = i.imm; break;
        case Op::Mov: r[rd] = r[ra]; break;
        case Op::Add: r[rd] = wrap(u(ra) + u(rb)); break;
        case Op::Sub: r[rd] = wrap(u(ra) - u(rb)); break;
        case Op::Mul: r[rd] = wrap(u(ra) * u(rb)); break;
        case Op::Mac: r[rd] = wrap(u(rd) + u(ra) * u(rb)); break;
        case Op::And: r[rd] = r[ra] & r[rb]; break;
        case Op::Or: r[rd] = r[ra] | r[rb]; break;
        case Op::Xor: r[rd] = r[ra] ^ r[rb]; break;
        case Op::Shl: r[rd] = static_cast<std::int32_t>(static_cast<std::uint32_t>(r[ra])
                                                        << (r[rb] & 31)); break;
        case Op::Shr: r[rd] = static_cast<std::int32_t>(static_cast<std::uint32_t>(r[ra]) >>
                                                        (r[rb] & 31)); break;
        case Op::Div:
        case Op::Rem: {
            if (r[rb] == 0) {
                fault_ = "division by zero at pc " + std::to_string(ctx_.pc);
                return {Trap::Fault, 0, 0};
            }
            if (r[ra] == std::numeric_limits<std::int32_t>::min() && r[rb] == -1) {
                // Overflow case defined architecturally (no trap).
                r[rd] = i.op == Op::Div ? r[ra] : 0;
            } else {
                r[rd] = i.op == Op::Div ? r[ra] / r[rb] : r[ra] % r[rb];
            }
            break;
        }
        case Op::Addi:
            r[rd] = wrap(u(ra) + static_cast<std::uint32_t>(i.imm));
            break;
        case Op::Ld: {
            const std::int64_t addr = static_cast<std::int64_t>(r[ra]) + i.imm;
            if (!mem_ok(addr)) {
                return {Trap::Fault, 0, 0};
            }
            r[rd] = mem_[static_cast<std::size_t>(addr)];
            break;
        }
        case Op::St: {
            const std::int64_t addr = static_cast<std::int64_t>(r[ra]) + i.imm;
            if (!mem_ok(addr)) {
                return {Trap::Fault, 0, 0};
            }
            mem_[static_cast<std::size_t>(addr)] = r[rb];
            break;
        }
        case Op::Beq:
            if (r[ra] == r[rb]) { next = i.imm; } else { --cost; }
            break;
        case Op::Bne:
            if (r[ra] != r[rb]) { next = i.imm; } else { --cost; }
            break;
        case Op::Blt:
            if (r[ra] < r[rb]) { next = i.imm; } else { --cost; }
            break;
        case Op::Bge:
            if (r[ra] >= r[rb]) { next = i.imm; } else { --cost; }
            break;
        case Op::Jmp: next = i.imm; break;
        case Op::Jal: r[rd] = ctx_.pc + 1; next = i.imm; break;
        case Op::Jr: next = r[ra]; break;
        case Op::Sys: trap = Trap::Sys; break;
        case Op::Halt: trap = Trap::Halt; next = ctx_.pc; break;  // stay put
    }

    ctx_.pc = next;
    ++retired_;
    cycles_ += static_cast<std::uint64_t>(cost);
    return {trap, cost, i.op == Op::Sys ? i.imm : 0};
}

RunResult Cpu::run(std::uint64_t max_cycles) {
    if (backend_ == IssBackend::Superblock) {
        if (engine_ == nullptr) {
            engine_ = std::make_unique<SuperblockEngine>(*this);
        }
        return engine_->run(max_cycles);
    }
    return run_reference(max_cycles);
}

RunResult Cpu::run_reference(std::uint64_t max_cycles) {
    RunResult agg{};
    while (agg.cycles < max_cycles) {
        const StepResult r = step();
        agg.cycles += static_cast<std::uint64_t>(r.cycles);
        if (r.trap != Trap::None) {
            agg.trap = r.trap;
            agg.sys_no = r.sys_no;
            return agg;
        }
    }
    return agg;
}

}  // namespace slm::iss
