#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "iss/cpu.hpp"
#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "sim/time.hpp"

namespace slm::iss {

/// Guest-kernel ABI: SYS service numbers. Arguments in r1/r2, results in r1.
enum GuestSyscall : std::int32_t {
    kSysYield = 1,       ///< voluntarily give up the CPU
    kSysExit = 2,        ///< terminate the calling task
    kSysSemWait = 3,     ///< P(sem r1)
    kSysSemPost = 4,     ///< V(sem r1)
    kSysHostNotify = 5,  ///< deliver r1/r2 to the host-side hook (instrumentation)
    kSysSleep = 6,       ///< block the caller for r1 CPU cycles
};

enum class GuestTaskState : std::uint8_t { Ready, Running, Blocked, Exited };

/// A guest task: a register context plus scheduling attributes. This is what
/// a real RTOS port's TCB holds; the kernel swaps contexts into the CPU on
/// each switch and charges the switch cycles to the machine.
struct GuestTask {
    std::string name;
    int priority = 0;  ///< smaller = higher, like the abstract RTOS model
    GuestTaskState state = GuestTaskState::Ready;
    Context ctx;
    std::uint64_t arrival_seq = 0;
    std::uint64_t cycles_used = 0;
};

struct GuestKernelConfig {
    std::uint64_t syscall_cycles = 50;         ///< kernel entry/exit per SYS
    std::uint64_t context_switch_cycles = 180;  ///< register save/restore + dispatch
    /// Round-robin time slice in cycles among equal-priority tasks
    /// (0 = run-to-block, the classic small-kernel default).
    std::uint64_t quantum_cycles = 0;
};

struct GuestKernelStats {
    std::uint64_t context_switches = 0;
    std::uint64_t syscalls = 0;
    std::uint64_t kernel_cycles = 0;  ///< cycles charged to kernel code
};

/// The small custom RTOS kernel of the implementation model (paper §5: "the
/// RTOS model was replaced by a small custom RTOS kernel" on the target
/// processor). Host-side implementation operating on guest register contexts;
/// kernel and context-switch work is charged in guest cycles, so its cost
/// shows up in the modeled timeline just like the real kernel's would.
class GuestKernel {
public:
    GuestKernel(Cpu& cpu, GuestKernelConfig cfg = {});

    /// Create a guest task starting at `entry` (instruction address) with the
    /// given stack pointer (r14).
    GuestTask* create_task(std::string name, int priority, std::int32_t entry,
                           std::int32_t stack_pointer);

    /// Initialize counting semaphore `id`.
    void sem_init(int id, unsigned count);

    /// Host-side V() — the path a device ISR takes into the kernel.
    void sem_post_from_host(int id);

    /// Hook invoked on kSysHostNotify with (r1, r2) — instrumentation channel
    /// from guest code to the host testbench.
    void set_host_notify(std::function<void(std::int32_t, std::int32_t)> fn) {
        host_notify_ = std::move(fn);
    }

    /// Execute up to `max_cycles` guest cycles (instructions + charged kernel
    /// work). Returns cycles actually consumed; 0 means the CPU is idle.
    [[nodiscard]] std::uint64_t run_slice(std::uint64_t max_cycles);

    /// Total cycles elapsed on this CPU (executed + idle-skipped); the time
    /// base for kSysSleep.
    [[nodiscard]] std::uint64_t now_cycles() const { return total_cycles_; }

    /// Cycles until the earliest sleeping task wakes (0 if none sleeps).
    [[nodiscard]] std::uint64_t cycles_until_wake() const;

    /// Advance the CPU's idle time (no task runnable): wakes sleepers whose
    /// deadline falls inside the skipped window.
    void skip_idle_cycles(std::uint64_t cycles);

    [[nodiscard]] bool idle() const { return current_ == nullptr && ready_.empty(); }
    [[nodiscard]] bool has_sleepers() const { return !sleepers_.empty(); }
    [[nodiscard]] bool all_exited() const;
    [[nodiscard]] const GuestKernelStats& stats() const { return stats_; }
    [[nodiscard]] const GuestTask* current() const { return current_; }
    [[nodiscard]] std::vector<const GuestTask*> tasks() const;

private:
    struct Sem {
        unsigned count = 0;
        std::deque<GuestTask*> waiters;
    };

    [[nodiscard]] GuestTask* pick_best();
    void make_ready(GuestTask* t);
    void schedule(std::uint64_t& used);  ///< dispatch/preempt; charges switch cycles
    void handle_sys(std::int32_t no, std::uint64_t& used);
    Sem& sem(int id);

    void wake_due_sleepers();

    Cpu& cpu_;
    GuestKernelConfig cfg_;
    std::vector<std::unique_ptr<GuestTask>> tasks_;
    std::vector<GuestTask*> ready_;
    std::map<int, Sem> sems_;
    std::vector<std::pair<std::uint64_t, GuestTask*>> sleepers_;  ///< (wake_cycle, task)
    std::uint64_t total_cycles_ = 0;
    GuestTask* current_ = nullptr;
    GuestTask* last_dispatched_ = nullptr;
    std::uint64_t seq_ = 0;
    std::uint64_t pending_cycles_ = 0;  ///< kernel work from host-side interrupts
    std::uint64_t quantum_used_ = 0;    ///< cycles since the current dispatch
    std::function<void(std::int32_t, std::int32_t)> host_notify_;
    GuestKernelStats stats_;
};

/// SLDL integration: runs a Cpu + GuestKernel as a processing element inside
/// the discrete-event simulation. Executes `slice_cycles` batches and advances
/// simulated time by cycles x cycle_time; interrupts posted by other SLDL
/// processes take effect at the next batch boundary (the implementation-model
/// analogue of the abstract model's preemption granularity).
class IssPe {
public:
    struct Config {
        SimTime cycle_time = nanoseconds(10);  ///< 100 MHz core
        std::uint64_t slice_cycles = 2000;
    };

    IssPe(sim::Kernel& kernel, std::string name, Cpu& cpu, GuestKernel& gk);
    IssPe(sim::Kernel& kernel, std::string name, Cpu& cpu, GuestKernel& gk, Config cfg);

    /// Device-interrupt entry: V(sem `id`) in the guest kernel and wake the
    /// PE if it was idle. Call from any SLDL process.
    void post_irq(int sem_id);

    /// Total simulated busy time of the CPU so far.
    [[nodiscard]] SimTime busy_time() const { return busy_; }

private:
    sim::Kernel& kernel_;
    GuestKernel& gk_;
    Config cfg_;
    sim::Event wake_;
    SimTime busy_{};
};

}  // namespace slm::iss
