#include "iss/engine.hpp"

#include <limits>
#include <string>

namespace slm::iss {

// The dispatch tables index handlers by the raw Op value; the split between
// straight-line body ops and block terminators is baked into these bounds.
static_assert(static_cast<int>(Op::St) == 16, "body handler table covers Nop..St");
static_assert(static_cast<int>(Op::Beq) == 17, "terminators start at Beq");
static_assert(static_cast<int>(Op::Halt) == 25, "Halt is the last opcode");

#if defined(__GNUC__) || defined(__clang__)
#define SLM_ISS_THREADED_DISPATCH 1
#else
#define SLM_ISS_THREADED_DISPATCH 0
#endif

bool threaded_dispatch_compiled() {
    return SLM_ISS_THREADED_DISPATCH != 0;
}

namespace {

using Decoded = SuperblockEngine::Decoded;

/// Result of executing a block body: `done` instructions retired; `fault`
/// 0 = none, 1 = data access out of range, 2 = division by zero (the faulting
/// instruction is code[done] and had no architectural effect).
struct BodyOutcome {
    std::uint32_t done = 0;
    std::uint8_t fault = 0;
};

constexpr std::uint8_t kFaultMem = 1;
constexpr std::uint8_t kFaultDiv = 2;

inline std::int32_t wrap(std::uint32_t v) { return static_cast<std::int32_t>(v); }
inline std::uint32_t uns(std::int32_t v) { return static_cast<std::uint32_t>(v); }

// ---- portable function-pointer dispatch ----
// Always compiled (so both paths stay warning-clean); used as the body
// executor only when computed goto is unavailable.

struct BodyState {
    std::int32_t* r;
    std::int32_t* mem;
    std::uint64_t mem_words;
};

/// Returns 0 on success, else the fault kind.
using Handler = std::uint8_t (*)(const Decoded&, BodyState&);

std::uint8_t h_nop(const Decoded&, BodyState&) { return 0; }
std::uint8_t h_ldi(const Decoded& d, BodyState& s) {
    s.r[d.rd] = d.imm;
    return 0;
}
std::uint8_t h_mov(const Decoded& d, BodyState& s) {
    s.r[d.rd] = s.r[d.ra];
    return 0;
}
std::uint8_t h_add(const Decoded& d, BodyState& s) {
    s.r[d.rd] = wrap(uns(s.r[d.ra]) + uns(s.r[d.rb]));
    return 0;
}
std::uint8_t h_sub(const Decoded& d, BodyState& s) {
    s.r[d.rd] = wrap(uns(s.r[d.ra]) - uns(s.r[d.rb]));
    return 0;
}
std::uint8_t h_mul(const Decoded& d, BodyState& s) {
    s.r[d.rd] = wrap(uns(s.r[d.ra]) * uns(s.r[d.rb]));
    return 0;
}
std::uint8_t h_mac(const Decoded& d, BodyState& s) {
    s.r[d.rd] = wrap(uns(s.r[d.rd]) + uns(s.r[d.ra]) * uns(s.r[d.rb]));
    return 0;
}
std::uint8_t h_and(const Decoded& d, BodyState& s) {
    s.r[d.rd] = s.r[d.ra] & s.r[d.rb];
    return 0;
}
std::uint8_t h_or(const Decoded& d, BodyState& s) {
    s.r[d.rd] = s.r[d.ra] | s.r[d.rb];
    return 0;
}
std::uint8_t h_xor(const Decoded& d, BodyState& s) {
    s.r[d.rd] = s.r[d.ra] ^ s.r[d.rb];
    return 0;
}
std::uint8_t h_shl(const Decoded& d, BodyState& s) {
    s.r[d.rd] = wrap(uns(s.r[d.ra]) << (s.r[d.rb] & 31));
    return 0;
}
std::uint8_t h_shr(const Decoded& d, BodyState& s) {
    s.r[d.rd] = wrap(uns(s.r[d.ra]) >> (s.r[d.rb] & 31));
    return 0;
}
std::uint8_t h_div(const Decoded& d, BodyState& s) {
    const std::int32_t b = s.r[d.rb];
    if (b == 0) {
        return kFaultDiv;
    }
    const std::int32_t a = s.r[d.ra];
    s.r[d.rd] = (a == std::numeric_limits<std::int32_t>::min() && b == -1) ? a : a / b;
    return 0;
}
std::uint8_t h_rem(const Decoded& d, BodyState& s) {
    const std::int32_t b = s.r[d.rb];
    if (b == 0) {
        return kFaultDiv;
    }
    const std::int32_t a = s.r[d.ra];
    s.r[d.rd] = (a == std::numeric_limits<std::int32_t>::min() && b == -1) ? 0 : a % b;
    return 0;
}
std::uint8_t h_addi(const Decoded& d, BodyState& s) {
    s.r[d.rd] = wrap(uns(s.r[d.ra]) + uns(d.imm));
    return 0;
}
std::uint8_t h_ld(const Decoded& d, BodyState& s) {
    // Load/store fastpath: a single unsigned compare covers both the negative
    // and the past-the-end case (negative addresses wrap to huge uint64).
    const auto addr =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(s.r[d.ra]) + d.imm);
    if (addr >= s.mem_words) {
        return kFaultMem;
    }
    s.r[d.rd] = s.mem[addr];
    return 0;
}
std::uint8_t h_st(const Decoded& d, BodyState& s) {
    const auto addr =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(s.r[d.ra]) + d.imm);
    if (addr >= s.mem_words) {
        return kFaultMem;
    }
    s.mem[addr] = s.r[d.rb];
    return 0;
}

[[maybe_unused]] BodyOutcome exec_body_table(const Decoded* code, std::uint32_t n,
                                             std::int32_t* r, std::int32_t* mem,
                                             std::uint64_t mem_words) {
    static const Handler kBody[17] = {h_nop, h_ldi, h_mov, h_add,  h_sub, h_mul,
                                      h_mac, h_and, h_or,  h_xor,  h_shl, h_shr,
                                      h_div, h_rem, h_addi, h_ld,  h_st};
    BodyState s{r, mem, mem_words};
    for (std::uint32_t k = 0; k < n; ++k) {
        const std::uint8_t fault = kBody[code[k].handler](code[k], s);
        if (fault != 0) {
            return {k, fault};
        }
    }
    return {n, 0};
}

#if SLM_ISS_THREADED_DISPATCH

/// Threaded (computed-goto) body executor: one indirect jump per instruction,
/// no loop bookkeeping between handlers.
BodyOutcome exec_body(const Decoded* code, std::uint32_t n, std::int32_t* r,
                      std::int32_t* mem, std::uint64_t mem_words) {
    if (n == 0) {
        return {0, 0};
    }
    static const void* const kBody[17] = {
        &&l_nop, &&l_ldi, &&l_mov, &&l_add,  &&l_sub, &&l_mul, &&l_mac, &&l_and,
        &&l_or,  &&l_xor, &&l_shl, &&l_shr,  &&l_div, &&l_rem, &&l_addi, &&l_ld,
        &&l_st};
    std::uint32_t k = 0;
    const Decoded* d = code;
#define SLM_DISPATCH()              \
    do {                            \
        if (++k == n) {             \
            return {n, 0};          \
        }                           \
        d = code + k;               \
        goto* kBody[d->handler];    \
    } while (0)
    goto* kBody[d->handler];
l_nop:
    SLM_DISPATCH();
l_ldi:
    r[d->rd] = d->imm;
    SLM_DISPATCH();
l_mov:
    r[d->rd] = r[d->ra];
    SLM_DISPATCH();
l_add:
    r[d->rd] = wrap(uns(r[d->ra]) + uns(r[d->rb]));
    SLM_DISPATCH();
l_sub:
    r[d->rd] = wrap(uns(r[d->ra]) - uns(r[d->rb]));
    SLM_DISPATCH();
l_mul:
    r[d->rd] = wrap(uns(r[d->ra]) * uns(r[d->rb]));
    SLM_DISPATCH();
l_mac:
    r[d->rd] = wrap(uns(r[d->rd]) + uns(r[d->ra]) * uns(r[d->rb]));
    SLM_DISPATCH();
l_and:
    r[d->rd] = r[d->ra] & r[d->rb];
    SLM_DISPATCH();
l_or:
    r[d->rd] = r[d->ra] | r[d->rb];
    SLM_DISPATCH();
l_xor:
    r[d->rd] = r[d->ra] ^ r[d->rb];
    SLM_DISPATCH();
l_shl:
    r[d->rd] = wrap(uns(r[d->ra]) << (r[d->rb] & 31));
    SLM_DISPATCH();
l_shr:
    r[d->rd] = wrap(uns(r[d->ra]) >> (r[d->rb] & 31));
    SLM_DISPATCH();
l_div: {
    const std::int32_t b = r[d->rb];
    if (b == 0) {
        return {k, kFaultDiv};
    }
    const std::int32_t a = r[d->ra];
    r[d->rd] = (a == std::numeric_limits<std::int32_t>::min() && b == -1) ? a : a / b;
    SLM_DISPATCH();
}
l_rem: {
    const std::int32_t b = r[d->rb];
    if (b == 0) {
        return {k, kFaultDiv};
    }
    const std::int32_t a = r[d->ra];
    r[d->rd] = (a == std::numeric_limits<std::int32_t>::min() && b == -1) ? 0 : a % b;
    SLM_DISPATCH();
}
l_addi:
    r[d->rd] = wrap(uns(r[d->ra]) + uns(d->imm));
    SLM_DISPATCH();
l_ld: {
    const auto addr =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(r[d->ra]) + d->imm);
    if (addr >= mem_words) {
        return {k, kFaultMem};
    }
    r[d->rd] = mem[addr];
    SLM_DISPATCH();
}
l_st: {
    const auto addr =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(r[d->ra]) + d->imm);
    if (addr >= mem_words) {
        return {k, kFaultMem};
    }
    mem[addr] = r[d->rb];
    SLM_DISPATCH();
}
#undef SLM_DISPATCH
}

#else

BodyOutcome exec_body(const Decoded* code, std::uint32_t n, std::int32_t* r,
                      std::int32_t* mem, std::uint64_t mem_words) {
    return exec_body_table(code, n, r, mem, mem_words);
}

#endif  // SLM_ISS_THREADED_DISPATCH

}  // namespace

SuperblockEngine::SuperblockEngine(Cpu& cpu)
    : cpu_(cpu), entry_(cpu.prog_.size(), -1) {}

std::int32_t SuperblockEngine::decode_block(std::int32_t entry_pc) {
    Block b;
    b.entry_pc = entry_pc;
    b.first = static_cast<std::uint32_t>(code_.size());
    const std::vector<Instr>& prog = cpu_.prog_;
    std::uint32_t cost = 0;
    std::int32_t pc = entry_pc;
    while (true) {
        const Instr& ins = prog[static_cast<std::size_t>(pc)];
        Decoded d;
        d.handler = static_cast<std::uint8_t>(ins.op);
        d.rd = ins.rd;
        d.ra = ins.ra;
        d.rb = ins.rb;
        d.prefix_cost = cost;
        d.imm = ins.imm;
        d.pc = pc;
        code_.push_back(d);
        cost += static_cast<std::uint32_t>(cycle_cost(ins.op));
        ++b.count;
        if (ins.op >= Op::Beq) {
            b.term = ins.op;
            b.has_term = true;
            break;
        }
        ++pc;
        if (pc >= static_cast<std::int32_t>(prog.size())) {
            break;  // block falls off the end of the program
        }
    }
    b.cost = cost;
    const auto idx = static_cast<std::int32_t>(blocks_.size());
    blocks_.push_back(b);
    entry_[static_cast<std::size_t>(entry_pc)] = idx;
    return idx;
}

std::int32_t SuperblockEngine::lookup_block(std::int32_t pc) {
    if (pc < 0 || pc >= static_cast<std::int32_t>(entry_.size())) {
        return -1;
    }
    const std::int32_t cached = entry_[static_cast<std::size_t>(pc)];
    return cached >= 0 ? cached : decode_block(pc);
}

RunResult SuperblockEngine::run(std::uint64_t max_cycles) {
    RunResult agg{};
    if (max_cycles == 0) {
        return agg;  // reference: the budget check precedes the first step
    }
    Context& ctx = cpu_.ctx_;
    std::int32_t bi = lookup_block(ctx.pc);
    if (bi < 0) {
        cpu_.fault_ = "pc out of range: " + std::to_string(ctx.pc);
        agg.trap = Trap::Fault;
        return agg;
    }
    std::int32_t* const r = ctx.regs.data();
    std::int32_t* const mem = cpu_.mem_.data();
    const std::uint64_t mem_words = cpu_.mem_.size();

    enum class Slot : std::uint8_t { None, Target, Fall };
    while (true) {
        // By value: lookup_block() during chain resolution may grow blocks_.
        const Block blk = blocks_[static_cast<std::size_t>(bi)];
        ++blocks_executed_;
        const Decoded* const code = code_.data() + blk.first;
        const std::uint32_t n = blk.count;
        const std::uint32_t body_n = blk.has_term ? n - 1 : n;
        const std::uint64_t room = max_cycles - agg.cycles;  // loop invariant: > 0

        // Reference budget rule: instruction k executes iff the cycles spent
        // before it stay below the budget, i.e. prefix_cost[k] < room. The
        // common case (whole block fits) is one compare against the last
        // prefix; otherwise scan for the first instruction over budget.
        std::uint32_t stop = n;
        if (code[n - 1].prefix_cost >= room) {
            stop = 1;  // prefix_cost[0] == 0 < room always holds
            while (code[stop].prefix_cost < room) {
                ++stop;
            }
        }

        const std::uint32_t body_run = stop < body_n ? stop : body_n;
        const BodyOutcome out = exec_body(code, body_run, r, mem, mem_words);
        if (out.fault != 0) {
            // The faulting instruction had no architectural effect: registers
            // and memory hold the state after code[out.done - 1], and the pc
            // parks on the faulting instruction, exactly like step().
            const Decoded& f = code[out.done];
            if (out.fault == kFaultMem) {
                const std::int64_t addr = static_cast<std::int64_t>(r[f.ra]) + f.imm;
                cpu_.fault_ = "data access out of range: " + std::to_string(addr);
            } else {
                cpu_.fault_ = "division by zero at pc " + std::to_string(f.pc);
            }
            ctx.pc = f.pc;
            cpu_.retired_ += out.done;
            cpu_.cycles_ += f.prefix_cost;
            agg.cycles += f.prefix_cost;
            agg.trap = Trap::Fault;
            return agg;
        }
        if (stop < n) {
            // Budget ran out mid-block: park the pc on the first instruction
            // that no longer fit, matching where the reference stepper stops.
            const Decoded& next_d = code[stop];
            ctx.pc = next_d.pc;
            cpu_.retired_ += stop;
            cpu_.cycles_ += next_d.prefix_cost;
            agg.cycles += next_d.prefix_cost;
            return agg;  // Trap::None
        }

        // Whole block retired: resolve the terminator.
        std::int32_t next_pc = 0;
        std::uint32_t charge = 0;
        Slot slot = Slot::None;
        if (!blk.has_term) {
            next_pc = blk.entry_pc + static_cast<std::int32_t>(n);
            charge = blk.cost;
            slot = Slot::Fall;
        } else {
            const Decoded& t = code[n - 1];
            const std::uint32_t pre = t.prefix_cost;
            const std::uint32_t tc = blk.cost - pre;  // terminator taken-cost
            switch (blk.term) {
                case Op::Beq:
                case Op::Bne:
                case Op::Blt:
                case Op::Bge: {
                    const std::int32_t a = r[t.ra];
                    const std::int32_t b2 = r[t.rb];
                    bool taken = false;
                    switch (blk.term) {
                        case Op::Beq: taken = a == b2; break;
                        case Op::Bne: taken = a != b2; break;
                        case Op::Blt: taken = a < b2; break;
                        default: taken = a >= b2; break;
                    }
                    if (taken) {
                        next_pc = t.imm;
                        charge = pre + tc;
                        slot = Slot::Target;
                    } else {
                        next_pc = t.pc + 1;
                        charge = pre + tc - 1;  // untaken branch is one cheaper
                        slot = Slot::Fall;
                    }
                    break;
                }
                case Op::Jmp:
                    next_pc = t.imm;
                    charge = pre + tc;
                    slot = Slot::Target;
                    break;
                case Op::Jal:
                    r[t.rd] = t.pc + 1;
                    next_pc = t.imm;
                    charge = pre + tc;
                    slot = Slot::Target;
                    break;
                case Op::Jr:
                    next_pc = r[t.ra];
                    charge = pre + tc;
                    break;  // dynamic target: no chain slot
                case Op::Sys:
                    ctx.pc = t.pc + 1;  // resume past the SYS instruction
                    cpu_.retired_ += n;
                    cpu_.cycles_ += pre + tc;
                    agg.cycles += pre + tc;
                    agg.trap = Trap::Sys;
                    agg.sys_no = t.imm;
                    return agg;
                case Op::Halt:
                    ctx.pc = t.pc;  // stay put: Halt re-executes on resume
                    cpu_.retired_ += n;
                    cpu_.cycles_ += pre + tc;
                    agg.cycles += pre + tc;
                    agg.trap = Trap::Halt;
                    return agg;
                default:
                    break;  // unreachable: body ops never terminate a block
            }
        }

        ctx.pc = next_pc;
        cpu_.retired_ += n;
        cpu_.cycles_ += charge;
        agg.cycles += charge;
        if (agg.cycles >= max_cycles) {
            // Budget spent exactly at the block boundary. Return before
            // resolving the next pc: like the reference, a bad next pc only
            // faults once the caller grants more cycles.
            return agg;
        }

        // Direct block chaining: statically known successors resolve through
        // the terminator's cached slot instead of the entry table.
        const std::int32_t cached = slot == Slot::Target ? blk.chain_target
                                    : slot == Slot::Fall ? blk.chain_fall
                                                         : -1;
        if (cached >= 0) {
            ++chain_hits_;
            bi = cached;
            continue;
        }
        const std::int32_t nb = lookup_block(next_pc);
        if (nb < 0) {
            cpu_.fault_ = "pc out of range: " + std::to_string(next_pc);
            agg.trap = Trap::Fault;
            return agg;
        }
        if (slot == Slot::Target) {
            blocks_[static_cast<std::size_t>(bi)].chain_target = nb;
        } else if (slot == Slot::Fall) {
            blocks_[static_cast<std::size_t>(bi)].chain_fall = nb;
        }
        bi = nb;
    }
}

}  // namespace slm::iss
