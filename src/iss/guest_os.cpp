#include "iss/guest_os.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace slm::iss {

GuestKernel::GuestKernel(Cpu& cpu, GuestKernelConfig cfg) : cpu_(cpu), cfg_(cfg) {}

GuestTask* GuestKernel::create_task(std::string name, int priority, std::int32_t entry,
                                    std::int32_t stack_pointer) {
    auto t = std::make_unique<GuestTask>();
    t->name = std::move(name);
    t->priority = priority;
    t->ctx.pc = entry;
    t->ctx.regs[14] = stack_pointer;  // sp
    t->arrival_seq = ++seq_;
    tasks_.push_back(std::move(t));
    ready_.push_back(tasks_.back().get());
    return tasks_.back().get();
}

void GuestKernel::sem_init(int id, unsigned count) {
    sems_[id].count = count;
}

GuestKernel::Sem& GuestKernel::sem(int id) {
    return sems_[id];
}

bool GuestKernel::all_exited() const {
    return std::all_of(tasks_.begin(), tasks_.end(), [](const auto& t) {
        return t->state == GuestTaskState::Exited;
    });
}

std::vector<const GuestTask*> GuestKernel::tasks() const {
    std::vector<const GuestTask*> out;
    out.reserve(tasks_.size());
    for (const auto& t : tasks_) {
        out.push_back(t.get());
    }
    return out;
}

GuestTask* GuestKernel::pick_best() {
    GuestTask* best = nullptr;
    for (GuestTask* t : ready_) {
        if (best == nullptr || t->priority < best->priority ||
            (t->priority == best->priority && t->arrival_seq < best->arrival_seq)) {
            best = t;
        }
    }
    return best;
}

void GuestKernel::make_ready(GuestTask* t) {
    t->state = GuestTaskState::Ready;
    t->arrival_seq = ++seq_;
    ready_.push_back(t);
}

void GuestKernel::schedule(std::uint64_t& used) {
    GuestTask* best = pick_best();
    if (current_ != nullptr) {
        if (best == nullptr || best->priority >= current_->priority) {
            return;  // keep running (no preemption on equal priority)
        }
        // Preempt: save the live context, running task goes back to ready.
        current_->ctx = cpu_.context();
        make_ready(current_);
        current_ = nullptr;
    }
    if (best == nullptr) {
        return;  // idle
    }
    std::erase(ready_, best);
    if (best != last_dispatched_) {
        // Count and charge only real task changes, mirroring how the abstract
        // RTOS model counts context switches (Table 1 comparability).
        ++stats_.context_switches;
        used += cfg_.context_switch_cycles;
        stats_.kernel_cycles += cfg_.context_switch_cycles;
        last_dispatched_ = best;
    }
    current_ = best;
    current_->state = GuestTaskState::Running;
    quantum_used_ = 0;
    cpu_.load_context(current_->ctx);
}

void GuestKernel::handle_sys(std::int32_t no, std::uint64_t& used) {
    ++stats_.syscalls;
    used += cfg_.syscall_cycles;
    stats_.kernel_cycles += cfg_.syscall_cycles;
    GuestTask* self = current_;
    SLM_ASSERT(self != nullptr, "SYS without a running guest task");
    self->ctx = cpu_.context();  // save at kernel entry

    switch (no) {
        case kSysYield:
            make_ready(self);
            current_ = nullptr;
            schedule(used);
            return;
        case kSysExit:
            self->state = GuestTaskState::Exited;
            current_ = nullptr;
            schedule(used);
            return;
        case kSysSemWait: {
            Sem& s = sem(cpu_.reg(1));
            if (s.count > 0) {
                --s.count;
                return;  // no switch
            }
            self->state = GuestTaskState::Blocked;
            s.waiters.push_back(self);
            current_ = nullptr;
            schedule(used);
            return;
        }
        case kSysSemPost: {
            Sem& s = sem(cpu_.reg(1));
            if (!s.waiters.empty()) {
                GuestTask* w = s.waiters.front();
                s.waiters.pop_front();
                make_ready(w);
                schedule(used);  // may preempt the caller
            } else {
                ++s.count;
            }
            return;
        }
        case kSysHostNotify:
            if (host_notify_) {
                host_notify_(cpu_.reg(1), cpu_.reg(2));
            }
            return;
        case kSysSleep: {
            const auto cycles = static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(cpu_.reg(1)));
            self->state = GuestTaskState::Blocked;
            sleepers_.emplace_back(total_cycles_ + cycles, self);
            current_ = nullptr;
            schedule(used);
            return;
        }
        default:
            SLM_ASSERT(false, "unknown guest syscall");
    }
}

std::uint64_t GuestKernel::cycles_until_wake() const {
    std::uint64_t earliest = 0;
    for (const auto& [wake, t] : sleepers_) {
        (void)t;
        const std::uint64_t dt = wake > total_cycles_ ? wake - total_cycles_ : 1;
        if (earliest == 0 || dt < earliest) {
            earliest = dt;
        }
    }
    return earliest;
}

void GuestKernel::wake_due_sleepers() {
    for (std::size_t i = 0; i < sleepers_.size();) {
        if (sleepers_[i].first <= total_cycles_) {
            make_ready(sleepers_[i].second);
            sleepers_[i] = sleepers_.back();
            sleepers_.pop_back();
        } else {
            ++i;
        }
    }
}

void GuestKernel::skip_idle_cycles(std::uint64_t cycles) {
    total_cycles_ += cycles;
    wake_due_sleepers();
}

void GuestKernel::sem_post_from_host(int id) {
    Sem& s = sem(id);
    if (s.waiters.empty()) {
        ++s.count;
        return;
    }
    GuestTask* w = s.waiters.front();
    s.waiters.pop_front();
    make_ready(w);
    // The interrupt path may preempt the running task; the kernel work is
    // charged at the start of the next execution slice.
    std::uint64_t extra = 0;
    schedule(extra);
    pending_cycles_ += extra;
}

std::uint64_t GuestKernel::run_slice(std::uint64_t max_cycles) {
    std::uint64_t used = pending_cycles_;
    pending_cycles_ = 0;
    total_cycles_ += used;
    // Tracks kernel work added to `used` by schedule()/handle_sys() so the
    // CPU's cycle clock stays in sync with the slice accounting.
    const auto sync_clock = [this, &used](std::uint64_t before) {
        total_cycles_ += used - before;
    };

    while (used < max_cycles) {
        if (!sleepers_.empty()) {
            wake_due_sleepers();
        }
        if (current_ == nullptr) {
            const std::uint64_t before = used;
            schedule(used);
            sync_clock(before);
            if (current_ == nullptr) {
                break;  // idle: nothing runnable
            }
            continue;
        }
        RunResult r;
        if (cpu_.backend() == IssBackend::Superblock) {
            // Batched fast path: hand the engine the largest budget that
            // cannot cross a kernel decision point, so every quantum
            // rotation, sleeper wake scan, and slice boundary lands on
            // exactly the same instruction as the per-step reference loop.
            std::uint64_t budget = max_cycles - used;
            if (cfg_.quantum_cycles > 0) {
                // The reference checks the quantum only after a retired
                // instruction, so a task entering the loop with its quantum
                // already spent still runs one more instruction.
                const std::uint64_t q_rem = cfg_.quantum_cycles > quantum_used_
                                                ? cfg_.quantum_cycles - quantum_used_
                                                : 1;
                budget = std::min(budget, q_rem);
            }
            if (!sleepers_.empty()) {
                budget = std::min(budget, cycles_until_wake());
            }
            r = cpu_.run(budget);
        } else {
            const StepResult s = cpu_.step();
            r = RunResult{s.trap, static_cast<std::uint64_t>(s.cycles), s.sys_no};
        }
        used += r.cycles;
        total_cycles_ += r.cycles;
        quantum_used_ += r.cycles;
        if (current_ != nullptr) {
            current_->cycles_used += r.cycles;
        }
        switch (r.trap) {
            case Trap::None:
                if (cfg_.quantum_cycles > 0 && quantum_used_ >= cfg_.quantum_cycles) {
                    // Round-robin rotation among equal priorities: the current
                    // task re-enters the ready queue with a fresh arrival
                    // stamp and the scheduler picks again.
                    GuestTask* self = current_;
                    self->ctx = cpu_.context();
                    make_ready(self);
                    current_ = nullptr;
                    const std::uint64_t before = used;
                    schedule(used);
                    sync_clock(before);
                }
                break;
            case Trap::Sys: {
                const std::uint64_t before = used;
                handle_sys(r.sys_no, used);
                sync_clock(before);
                break;
            }
            case Trap::Halt: {
                GuestTask* self = current_;
                self->state = GuestTaskState::Exited;
                current_ = nullptr;
                const std::uint64_t before = used;
                schedule(used);
                sync_clock(before);
                break;
            }
            case Trap::Fault:
                SLM_ASSERT(false, cpu_.fault_message().c_str());
                break;
        }
    }
    return used;
}

// ---- IssPe ----

IssPe::IssPe(sim::Kernel& kernel, std::string name, Cpu& cpu, GuestKernel& gk)
    : IssPe(kernel, std::move(name), cpu, gk, Config{}) {}

IssPe::IssPe(sim::Kernel& kernel, std::string name, Cpu& cpu, GuestKernel& gk, Config cfg)
    : kernel_(kernel), gk_(gk), cfg_(cfg), wake_(kernel, name + ".wake") {
    (void)cpu;  // owned by the caller; the kernel drives it through gk_
    kernel_.spawn(name, [this] {
        // Advance the guest cycle clock across an idle wait so kSysSleep
        // deadlines stay aligned with simulated time.
        const auto skip_idle = [this](const SimTime& t0) {
            gk_.skip_idle_cycles((kernel_.now() - t0).ns() / cfg_.cycle_time.ns());
        };
        while (!gk_.all_exited()) {
            if (gk_.idle()) {
                const SimTime t0 = kernel_.now();
                if (gk_.has_sleepers()) {
                    // Sleep until the earliest guest wakeup — or an interrupt.
                    const std::uint64_t dt = gk_.cycles_until_wake();
                    (void)kernel_.wait_timeout(wake_, cfg_.cycle_time * dt);
                } else {
                    kernel_.wait(wake_);
                }
                skip_idle(t0);
                continue;
            }
            const std::uint64_t used = gk_.run_slice(cfg_.slice_cycles);
            if (used == 0) {
                continue;
            }
            const SimTime dt = cfg_.cycle_time * used;
            busy_ += dt;
            kernel_.waitfor(dt);
        }
    });
}

void IssPe::post_irq(int sem_id) {
    gk_.sem_post_from_host(sem_id);
    kernel_.notify(wake_);
}

}  // namespace slm::iss
