#pragma once

#include <cstdint>
#include <vector>

#include "iss/cpu.hpp"

namespace slm::iss {

/// True when the engine was compiled with the computed-goto threaded-dispatch
/// loop (GNU labels-as-values); false means the portable function-pointer
/// handler table is in use. Either way the architectural results are
/// identical — this only selects the dispatch mechanism.
[[nodiscard]] bool threaded_dispatch_compiled();

/// Decoded-superblock execution engine: the fast backend behind
/// `Cpu::run()` (see `IssBackend::Superblock`).
///
/// The immutable program is pre-decoded on demand into *superblocks* — runs
/// of instructions ending at the first control transfer (branch, `jmp`,
/// `jal`, `jr`, `sys`, `halt`) or at the end of the program. Each instruction
/// is lowered to a compact pre-resolved form (`Decoded`: handler id, operand
/// register indices, immediate, and the cycle cost of everything before it in
/// the block), so the hot loop does no opcode classification, no per-step
/// cycle-cost lookup, and no per-instruction counter updates. Blocks may
/// overlap: a jump into the middle of an existing block simply decodes a new
/// block starting there (the riscv-vp "dbbcache" idiom).
///
/// Dispatch inside a block is threaded (computed goto) where the compiler
/// supports it, a function-pointer table otherwise. Statically known branch
/// targets (taken branches, `jmp`, `jal`) and fallthroughs are *chained*:
/// after the first execution the successor block index is cached in the
/// terminator's chain slot and the entry-table lookup is skipped.
///
/// Cycle/retired accounting is aggregated per block, and the engine is
/// cycle-exact against the reference interpreter: a `run(max_cycles)` budget
/// stops at exactly the same instruction (block epilogues replay the
/// reference's pre-instruction budget check via the per-instruction prefix
/// costs), faults charge nothing for the faulting instruction, and fault
/// messages are byte-identical. `ci/check_iss.sh` enforces this lockstep.
class SuperblockEngine {
public:
    /// Compact pre-resolved instruction. `handler` is the dispatch index
    /// (the `Op` value); `prefix_cost` is the cycle cost of all preceding
    /// instructions in the same block, which lets block epilogues reconstruct
    /// mid-block budget stops and fault accounting without per-instruction
    /// bookkeeping.
    struct Decoded {
        std::uint8_t handler = 0;
        std::uint8_t rd = 0;
        std::uint8_t ra = 0;
        std::uint8_t rb = 0;
        std::uint32_t prefix_cost = 0;
        std::int32_t imm = 0;
        std::int32_t pc = 0;
    };

    explicit SuperblockEngine(Cpu& cpu);

    /// Same contract as `Cpu::run()`: execute until a trap or until the cycle
    /// budget is exhausted, overshooting by at most one instruction, with
    /// architectural state byte-identical to the reference interpreter.
    RunResult run(std::uint64_t max_cycles);

    // ---- cache statistics (diagnostics / bench reporting) ----
    [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
    [[nodiscard]] std::size_t decoded_instr_count() const { return code_.size(); }
    [[nodiscard]] std::uint64_t blocks_executed() const { return blocks_executed_; }
    [[nodiscard]] std::uint64_t chain_hits() const { return chain_hits_; }

private:
    struct Block {
        std::uint32_t first = 0;  ///< index of the first Decoded in code_
        std::uint32_t count = 0;  ///< instructions including the terminator
        std::uint32_t cost = 0;   ///< total cycle cost (branch assumed taken)
        Op term = Op::Nop;        ///< terminator op; Nop = falls off the end
        bool has_term = false;
        std::int32_t entry_pc = 0;
        std::int32_t chain_target = -1;  ///< cached block for the static target
        std::int32_t chain_fall = -1;    ///< cached block for the fallthrough
    };

    /// Block starting at `pc`, decoding it first if needed; -1 if `pc` is
    /// outside the program (the caller raises the pc fault).
    [[nodiscard]] std::int32_t lookup_block(std::int32_t pc);
    std::int32_t decode_block(std::int32_t entry_pc);

    Cpu& cpu_;
    std::vector<Decoded> code_;         ///< decoded bodies, blocks are slices
    std::vector<Block> blocks_;
    std::vector<std::int32_t> entry_;   ///< pc -> block index, -1 = not decoded
    std::uint64_t blocks_executed_ = 0;
    std::uint64_t chain_hits_ = 0;
};

}  // namespace slm::iss
