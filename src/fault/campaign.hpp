#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "fault/fault.hpp"
#include "sim/time.hpp"

namespace slm::fault {

/// Campaign driver: the same fault plan instantiated across a range of seeds,
/// one full model run per seed. The runner callback owns the model (it builds
/// a fresh kernel + OS per run, attaches the injector, runs, and reports back
/// a canonical trace), so campaigns work with any model the repo has —
/// fig3/fig8, the vocoder, hand-built test models.

/// What one campaign run produced. `trace_csv` is the run's canonical
/// TraceRecorder::write_csv output — the byte-comparable artifact replay
/// determinism is checked against (ci/check_faults.sh).
struct CampaignRun {
    std::uint64_t seed = 0;
    std::string trace_csv;
    std::uint64_t injections = 0;      ///< total faults fired (FaultStats::total)
    std::uint64_t deadline_misses = 0; ///< filled by the runner (model-specific)
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t watchdog_fires = 0;
    std::uint64_t jobs_skipped = 0;
    SimTime end_time{};
};

/// Aggregate of a seed sweep.
struct CampaignResult {
    std::vector<CampaignRun> runs;

    [[nodiscard]] std::uint64_t total_injections() const;
    [[nodiscard]] std::uint64_t total_misses() const;
};

/// Canonical JSON serialization of a CampaignResult: fixed key order, no
/// whitespace, runs in stored order (ascending seed), each run's full
/// trace_csv inlined. Like explore::write_result_json this is the
/// byte-comparable artifact the parallel engine's determinism contract and
/// ci/check_parallel.sh are phrased in. Schema: slm-campaign-result-v1.
void write_campaign_json(std::ostream& os, const CampaignResult& res);

struct CampaignConfig {
    std::uint64_t first_seed = 1;
    unsigned runs = 1;  ///< seeds first_seed .. first_seed + runs - 1
};

/// The model runner: build, attach `inj` to the model's core(s), simulate,
/// and fill `out` (trace_csv, recovery counters, end_time; `seed` and
/// `injections` are filled by the driver). Must be deterministic — the
/// injector is the only sanctioned randomness source. When the campaign is
/// sharded by the parallel engine (slm::parallel::run_campaign), the runner
/// must additionally be callable concurrently from multiple threads: confine
/// all mutable state to the run being built.
using CampaignRunFn = std::function<void(FaultInjector& inj, CampaignRun& out)>;

/// Run `cfg.runs` independent experiments of `plan`, one per seed.
[[nodiscard]] CampaignResult run_campaign(const FaultPlan& plan,
                                          const CampaignConfig& cfg,
                                          const CampaignRunFn& fn);

/// Schedule exploration under a fixed fault plan: every explored path gets a
/// fresh FaultInjector(plan, seed), the user's build function creates the
/// model (and may attach the injector itself — e.g. before os.start()); any
/// watched core still without a fault hook afterwards gets this injector.
/// The result explores schedule nondeterminism *and* the injected faults
/// jointly, with replay identity intact.
using FaultBuildFn = std::function<void(explore::Run&, FaultInjector&)>;
[[nodiscard]] explore::Explorer make_fault_explorer(FaultPlan plan,
                                                    std::uint64_t seed,
                                                    FaultBuildFn build,
                                                    explore::ExploreConfig cfg = {});

}  // namespace slm::fault
