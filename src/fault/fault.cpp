#include "fault/fault.hpp"

#include <charconv>
#include <cmath>
#include <sstream>
#include <string_view>

#include "sim/assert.hpp"
#include "sim/kernel.hpp"

namespace slm::fault {

const char* to_string(FaultKind k) {
    switch (k) {
        case FaultKind::ExecScale: return "exec_scale";
        case FaultKind::ExecJitter: return "exec_jitter";
        case FaultKind::IsrDrop: return "isr_drop";
        case FaultKind::IsrDelay: return "isr_delay";
        case FaultKind::IsrSpurious: return "isr_spurious";
        case FaultKind::Crash: return "crash";
        case FaultKind::MutexStall: return "mutex_stall";
    }
    return "?";
}

// ---- plan grammar ----

namespace {

bool parse_number(std::string_view sv, std::uint64_t& out) {
    const char* end = sv.data() + sv.size();
    const auto [ptr, ec] = std::from_chars(sv.data(), end, out);
    return ec == std::errc{} && ptr == end && !sv.empty();
}

bool parse_double(std::string_view sv, double& out) {
    const char* end = sv.data() + sv.size();
    const auto [ptr, ec] = std::from_chars(sv.data(), end, out);
    return ec == std::errc{} && ptr == end && !sv.empty();
}

/// "200us" / "5ms" / "1s" / "1500ns" / plain "42" (= ns).
bool parse_time(std::string_view sv, SimTime& out) {
    std::uint64_t mult = 1;
    if (sv.ends_with("ns")) {
        sv.remove_suffix(2);
    } else if (sv.ends_with("us")) {
        mult = 1'000;
        sv.remove_suffix(2);
    } else if (sv.ends_with("ms")) {
        mult = 1'000'000;
        sv.remove_suffix(2);
    } else if (sv.ends_with("s")) {
        mult = 1'000'000'000;
        sv.remove_suffix(1);
    }
    std::uint64_t v = 0;
    if (!parse_number(sv, v)) {
        return false;
    }
    out = SimTime{v * mult};
    return true;
}

std::vector<std::string_view> split_ws(std::string_view line) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
            ++i;
        }
        const std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
            ++i;
        }
        if (i > start) {
            out.push_back(line.substr(start, i - start));
        }
    }
    return out;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(const std::string& text,
                                          std::string* err) {
    FaultPlan plan;
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    const auto fail = [&](const std::string& why) -> std::optional<FaultPlan> {
        if (err != nullptr) {
            *err = "line " + std::to_string(lineno) + ": " + why;
        }
        return std::nullopt;
    };
    while (std::getline(is, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.resize(hash);
        }
        const std::vector<std::string_view> tok = split_ws(line);
        if (tok.empty()) {
            continue;
        }
        if (tok[0] == "seed") {
            if (tok.size() != 2 || !parse_number(tok[1], plan.seed)) {
                return fail("expected \"seed <number>\"");
            }
            continue;
        }
        FaultSpec spec;
        if (tok[0] == "exec_scale") {
            spec.kind = FaultKind::ExecScale;
        } else if (tok[0] == "exec_jitter") {
            spec.kind = FaultKind::ExecJitter;
        } else if (tok[0] == "isr_drop") {
            spec.kind = FaultKind::IsrDrop;
        } else if (tok[0] == "isr_delay") {
            spec.kind = FaultKind::IsrDelay;
        } else if (tok[0] == "isr_spurious") {
            spec.kind = FaultKind::IsrSpurious;
        } else if (tok[0] == "crash") {
            spec.kind = FaultKind::Crash;
        } else if (tok[0] == "mutex_stall") {
            spec.kind = FaultKind::MutexStall;
        } else {
            return fail("unknown directive \"" + std::string(tok[0]) + "\"");
        }
        if (tok.size() < 2) {
            return fail(std::string(tok[0]) + " needs a target name (or *)");
        }
        spec.target = std::string(tok[1]);
        bool saw_factor = false;
        bool saw_amount = false;
        for (std::size_t i = 2; i < tok.size(); ++i) {
            const std::size_t eq = tok[i].find('=');
            if (eq == std::string_view::npos) {
                return fail("expected key=value, got \"" + std::string(tok[i]) +
                            "\"");
            }
            const std::string_view key = tok[i].substr(0, eq);
            const std::string_view val = tok[i].substr(eq + 1);
            const auto bad = [&](const char* what) {
                return fail(std::string(what) + " \"" + std::string(val) +
                            "\" for " + std::string(key));
            };
            if (key == "factor") {
                if (!parse_double(val, spec.factor) || spec.factor < 0.0) {
                    return bad("bad factor");
                }
                saw_factor = true;
            } else if (key == "p") {
                if (!parse_double(val, spec.probability) ||
                    spec.probability < 0.0 || spec.probability > 1.0) {
                    return bad("bad probability");
                }
            } else if (key == "max" || key == "delay" || key == "stall") {
                if (!parse_time(val, spec.amount)) {
                    return bad("bad time");
                }
                saw_amount = true;
            } else if (key == "after") {
                if (!parse_time(val, spec.after)) {
                    return bad("bad time");
                }
            } else if (key == "until") {
                if (!parse_time(val, spec.until)) {
                    return bad("bad time");
                }
            } else if (key == "extra") {
                std::uint64_t n = 0;
                if (!parse_number(val, n) || n == 0) {
                    return bad("bad count");
                }
                spec.extra = static_cast<unsigned>(n);
            } else if (key == "at") {
                SimTime t{};
                if (!parse_time(val, t)) {
                    return bad("bad time");
                }
                spec.at = t;
            } else {
                return fail("unknown key \"" + std::string(key) + "\"");
            }
        }
        if (spec.kind == FaultKind::ExecScale && !saw_factor) {
            return fail("exec_scale needs factor=");
        }
        if ((spec.kind == FaultKind::ExecJitter ||
             spec.kind == FaultKind::IsrDelay ||
             spec.kind == FaultKind::MutexStall) &&
            !saw_amount) {
            return fail(std::string(to_string(spec.kind)) +
                        " needs a time amount (max=/delay=/stall=)");
        }
        plan.specs.push_back(std::move(spec));
    }
    return plan;
}

// ---- the injector ----

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

bool matches(const std::string& pattern, const std::string& name) {
    return pattern == "*" || pattern == name;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : FaultInjector(std::move(plan), 0) {
    seed_ = plan_.seed;
    rng_ = seed_;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed), rng_(seed) {
    fired_.assign(plan_.specs.size(), false);
}

void FaultInjector::attach(rtos::OsCore& core) {
    SLM_ASSERT(kernel_ == nullptr || kernel_ == &core.kernel(),
               "one FaultInjector cannot span kernels");
    kernel_ = &core.kernel();
    core.set_fault_hook(this);
}

SimTime FaultInjector::now() const {
    SLM_ASSERT(kernel_ != nullptr, "FaultInjector used before attach()");
    return kernel_->now();
}

std::uint64_t FaultInjector::next_random() { return splitmix64(rng_); }

/// Target+window+probability gate. Consumes the PRNG only for rules whose
/// target and window matched (so unrelated models do not shift the stream).
bool FaultInjector::armed(const FaultSpec& s, const std::string& target_name) {
    if (!matches(s.target, target_name)) {
        return false;
    }
    const SimTime t = now();
    if (t < s.after || !(t < s.until)) {
        return false;
    }
    if (s.probability >= 1.0) {
        return true;
    }
    const double roll =
        static_cast<double>(next_random() >> 11) * 0x1.0p-53;  // [0,1)
    return roll < s.probability;
}

SimTime FaultInjector::transform_exec(const rtos::Task& t, SimTime dt) {
    for (const FaultSpec& s : plan_.specs) {
        if (s.kind == FaultKind::ExecScale && armed(s, t.name())) {
            dt = SimTime{static_cast<std::uint64_t>(
                std::llround(static_cast<double>(dt.ns()) * s.factor))};
            ++stats_.exec_scaled;
        } else if (s.kind == FaultKind::ExecJitter && armed(s, t.name())) {
            dt = dt + SimTime{next_random() % (s.amount.ns() + 1)};
            ++stats_.exec_jittered;
        }
    }
    return dt;
}

rtos::IsrFate FaultInjector::isr_fate(const std::string& irq_name) {
    rtos::IsrFate fate;
    for (const FaultSpec& s : plan_.specs) {
        switch (s.kind) {
            case FaultKind::IsrDrop:
                if (fate.deliver && armed(s, irq_name)) {
                    fate.deliver = false;
                    ++stats_.isr_dropped;
                }
                break;
            case FaultKind::IsrDelay:
                if (fate.delay.is_zero() && armed(s, irq_name)) {
                    fate.delay = s.amount;
                    ++stats_.isr_delayed;
                }
                break;
            case FaultKind::IsrSpurious:
                if (armed(s, irq_name)) {
                    fate.extra_fires += s.extra;
                    stats_.isr_spurious += s.extra;
                }
                break;
            default:
                break;
        }
    }
    return fate;
}

bool FaultInjector::crash_at_dispatch(const rtos::Task& t) {
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
        const FaultSpec& s = plan_.specs[i];
        if (s.kind != FaultKind::Crash || fired_[i] ||
            !matches(s.target, t.name())) {
            continue;
        }
        if (s.at.has_value()) {
            if (now() < *s.at) {
                continue;
            }
        } else if (!armed(s, t.name())) {
            continue;
        }
        fired_[i] = true;  // one-shot: a restarted task does not re-crash
        ++stats_.crashes_injected;
        return true;
    }
    return false;
}

SimTime FaultInjector::stall_after_acquire(const rtos::Task& /*t*/,
                                           const std::string& resource) {
    SimTime stall{};
    for (const FaultSpec& s : plan_.specs) {
        if (s.kind == FaultKind::MutexStall && armed(s, resource)) {
            stall = stall + s.amount;
            ++stats_.stalls_injected;
        }
    }
    return stall;
}

// ---- obs integration ----

void register_fault_stats(obs::Registry& reg, const FaultInjector& inj,
                          obs::Labels base) {
    base.emplace_back("seed", std::to_string(inj.seed()));
    const FaultInjector* p = &inj;
    const auto g = [&](const char* name, const char* help, auto getter) {
        reg.gauge_fn(name, help, [p, getter] { return getter(*p); }, base);
    };
    g("slm_fault_exec_scaled_total", "execution delays scaled",
      [](const FaultInjector& f) { return double(f.stats().exec_scaled); });
    g("slm_fault_exec_jittered_total", "execution delays jittered",
      [](const FaultInjector& f) { return double(f.stats().exec_jittered); });
    g("slm_fault_isr_dropped_total", "interrupt deliveries dropped",
      [](const FaultInjector& f) { return double(f.stats().isr_dropped); });
    g("slm_fault_isr_delayed_total", "interrupt deliveries delayed",
      [](const FaultInjector& f) { return double(f.stats().isr_delayed); });
    g("slm_fault_isr_spurious_total", "spurious interrupt deliveries",
      [](const FaultInjector& f) { return double(f.stats().isr_spurious); });
    g("slm_fault_crashes_total", "task crashes injected",
      [](const FaultInjector& f) { return double(f.stats().crashes_injected); });
    g("slm_fault_stalls_total", "mutex-holder stalls injected",
      [](const FaultInjector& f) { return double(f.stats().stalls_injected); });
}

}  // namespace slm::fault
