#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "rtos/core.hpp"
#include "sim/time.hpp"

namespace slm::fault {

/// Deterministic fault injection for the RTOS model.
///
/// A FaultPlan describes *what* can go wrong (which tasks run slow, which
/// interrupts drop, who crashes); a FaultInjector is one seeded instantiation
/// of that plan, attached to an OsCore via the rtos::FaultHook interface.
/// Everything is driven by simulated time and a splitmix64 PRNG — no wall
/// clock, no global state — so a campaign replayed with the same plan, seed,
/// and model build produces byte-for-byte identical traces
/// (ci/check_faults.sh pins this). See docs/fault-injection.md.

/// What kind of fault a FaultSpec injects.
enum class FaultKind {
    ExecScale,   ///< multiply a task's time_wait() delays by `factor`
    ExecJitter,  ///< add uniform random [0, amount] to a task's delays
    IsrDrop,     ///< drop an interrupt delivery entirely
    IsrDelay,    ///< postpone an interrupt delivery by `amount`
    IsrSpurious, ///< deliver `extra` spurious repeats after the real one
    Crash,       ///< crash a task at its next dispatch (one-shot)
    MutexStall,  ///< holder burns `amount` extra CPU right after acquiring
};

[[nodiscard]] const char* to_string(FaultKind k);

/// One fault rule. `target` names the task (ExecScale/ExecJitter/Crash),
/// interrupt line (Isr*), or resource (MutexStall) it applies to; "*" matches
/// everything. Rules fire only inside the [after, until) simulated-time
/// window, and — when `probability` < 1 — with that per-opportunity chance.
struct FaultSpec {
    FaultKind kind = FaultKind::ExecScale;
    std::string target = "*";
    double factor = 1.0;           ///< ExecScale multiplier (>1 = overrun)
    SimTime amount{};              ///< ExecJitter max / IsrDelay / MutexStall time
    double probability = 1.0;      ///< per-opportunity injection chance
    SimTime after{};               ///< window start (inclusive)
    SimTime until = SimTime::max();///< window end (exclusive)
    unsigned extra = 1;            ///< IsrSpurious repeat count
    std::optional<SimTime> at;     ///< Crash: fire at the first dispatch >= at
};

/// A named set of fault rules plus the default seed. Build programmatically
/// or parse from the small text grammar (docs/fault-injection.md):
///
///     # transcoder overruns 30% past its WCET after 10ms
///     seed 42
///     exec_scale transcoder factor=1.3 after=10ms
///     isr_drop ext p=0.1
///     crash logger at=5ms
///     mutex_stall buf stall=200us p=0.5
struct FaultPlan {
    std::uint64_t seed = 1;
    std::vector<FaultSpec> specs;

    /// Parse the text grammar. On failure returns nullopt and, when `err` is
    /// non-null, a "line N: what went wrong" diagnostic.
    [[nodiscard]] static std::optional<FaultPlan> parse(const std::string& text,
                                                        std::string* err = nullptr);
};

/// Injection counters, by mechanism (how often each fault actually fired —
/// not how often a rule was consulted).
struct FaultStats {
    std::uint64_t exec_scaled = 0;
    std::uint64_t exec_jittered = 0;
    std::uint64_t isr_dropped = 0;
    std::uint64_t isr_delayed = 0;
    std::uint64_t isr_spurious = 0;
    std::uint64_t crashes_injected = 0;
    std::uint64_t stalls_injected = 0;

    [[nodiscard]] std::uint64_t total() const {
        return exec_scaled + exec_jittered + isr_dropped + isr_delayed +
               isr_spurious + crashes_injected + stalls_injected;
    }
};

/// Seeded, plan-driven rtos::FaultHook. One injector is one experiment: the
/// PRNG stream is consumed only when a rule's target and window match, so two
/// runs of the same model under the same (plan, seed) take identical
/// decisions at identical instants.
class FaultInjector final : public rtos::FaultHook {
public:
    /// Uses plan.seed.
    explicit FaultInjector(FaultPlan plan);
    /// Overrides the plan's seed (campaign sweeps construct these).
    FaultInjector(FaultPlan plan, std::uint64_t seed);

    /// Install as `core`'s fault hook (and learn its kernel clock). An
    /// injector may serve several cores of the same kernel.
    void attach(rtos::OsCore& core);

    [[nodiscard]] const FaultStats& stats() const { return stats_; }
    [[nodiscard]] std::uint64_t seed() const { return seed_; }
    [[nodiscard]] const FaultPlan& plan() const { return plan_; }

    // ---- rtos::FaultHook ----
    SimTime transform_exec(const rtos::Task& t, SimTime dt) override;
    rtos::IsrFate isr_fate(const std::string& irq_name) override;
    bool crash_at_dispatch(const rtos::Task& t) override;
    SimTime stall_after_acquire(const rtos::Task& t,
                                const std::string& resource) override;

private:
    [[nodiscard]] SimTime now() const;
    [[nodiscard]] bool armed(const FaultSpec& s, const std::string& target_name);
    [[nodiscard]] std::uint64_t next_random();

    FaultPlan plan_;
    std::uint64_t seed_;
    std::uint64_t rng_;
    std::vector<bool> fired_;  ///< per-spec one-shot latch (Crash)
    sim::Kernel* kernel_ = nullptr;
    FaultStats stats_;
};

/// Register the injector's counters as callback gauges (slm_fault_*_total,
/// labeled {seed="<seed>"} plus `base`). The injector must outlive the
/// registry export, like every other register_*_stats target.
void register_fault_stats(obs::Registry& reg, const FaultInjector& inj,
                          obs::Labels base = {});

}  // namespace slm::fault
