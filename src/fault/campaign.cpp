#include "fault/campaign.hpp"

#include <ostream>
#include <utility>

#include "trace/trace.hpp"

namespace slm::fault {

std::uint64_t CampaignResult::total_injections() const {
    std::uint64_t n = 0;
    for (const CampaignRun& r : runs) {
        n += r.injections;
    }
    return n;
}

std::uint64_t CampaignResult::total_misses() const {
    std::uint64_t n = 0;
    for (const CampaignRun& r : runs) {
        n += r.deadline_misses;
    }
    return n;
}

void write_campaign_json(std::ostream& os, const CampaignResult& res) {
    os << "{\"schema\":\"slm-campaign-result-v1\",\"runs\":[";
    for (std::size_t i = 0; i < res.runs.size(); ++i) {
        const CampaignRun& r = res.runs[i];
        if (i != 0) {
            os << ',';
        }
        os << "{\"seed\":" << r.seed << ",\"injections\":" << r.injections
           << ",\"deadline_misses\":" << r.deadline_misses
           << ",\"crashes\":" << r.crashes << ",\"restarts\":" << r.restarts
           << ",\"watchdog_fires\":" << r.watchdog_fires
           << ",\"jobs_skipped\":" << r.jobs_skipped
           << ",\"end_ns\":" << r.end_time.ns() << ",\"trace_csv\":\""
           << trace::json_escape(r.trace_csv) << "\"}";
    }
    os << "],\"total_injections\":" << res.total_injections()
       << ",\"total_misses\":" << res.total_misses() << "}\n";
}

CampaignResult run_campaign(const FaultPlan& plan, const CampaignConfig& cfg,
                            const CampaignRunFn& fn) {
    CampaignResult res;
    res.runs.reserve(cfg.runs);
    for (unsigned i = 0; i < cfg.runs; ++i) {
        const std::uint64_t seed = cfg.first_seed + i;
        FaultInjector inj(plan, seed);
        CampaignRun run;
        fn(inj, run);
        run.seed = seed;  // driver-owned fields, set last so the runner
        run.injections = inj.stats().total();  // can't clobber them

        res.runs.push_back(std::move(run));
    }
    return res;
}

explore::Explorer make_fault_explorer(FaultPlan plan, std::uint64_t seed,
                                      FaultBuildFn build,
                                      explore::ExploreConfig cfg) {
    return explore::Explorer(
        [plan = std::move(plan), seed, build = std::move(build)](explore::Run& run) {
            FaultInjector& inj = run.make<FaultInjector>(plan, seed);
            build(run, inj);
            for (rtos::OsCore* core : run.watched_cores()) {
                if (core->fault_hook() == nullptr) {
                    inj.attach(*core);
                }
            }
        },
        cfg);
}

}  // namespace slm::fault
