#include "fault/campaign.hpp"

#include <utility>

namespace slm::fault {

std::uint64_t CampaignResult::total_injections() const {
    std::uint64_t n = 0;
    for (const CampaignRun& r : runs) {
        n += r.injections;
    }
    return n;
}

std::uint64_t CampaignResult::total_misses() const {
    std::uint64_t n = 0;
    for (const CampaignRun& r : runs) {
        n += r.deadline_misses;
    }
    return n;
}

CampaignResult run_campaign(const FaultPlan& plan, const CampaignConfig& cfg,
                            const CampaignRunFn& fn) {
    CampaignResult res;
    res.runs.reserve(cfg.runs);
    for (unsigned i = 0; i < cfg.runs; ++i) {
        const std::uint64_t seed = cfg.first_seed + i;
        FaultInjector inj(plan, seed);
        CampaignRun run;
        fn(inj, run);
        run.seed = seed;  // driver-owned fields, set last so the runner
        run.injections = inj.stats().total();  // can't clobber them

        res.runs.push_back(std::move(run));
    }
    return res;
}

explore::Explorer make_fault_explorer(FaultPlan plan, std::uint64_t seed,
                                      FaultBuildFn build,
                                      explore::ExploreConfig cfg) {
    return explore::Explorer(
        [plan = std::move(plan), seed, build = std::move(build)](explore::Run& run) {
            FaultInjector& inj = run.make<FaultInjector>(plan, seed);
            build(run, inj);
            for (rtos::OsCore* core : run.watched_cores()) {
                if (core->fault_hook() == nullptr) {
                    inj.attach(*core);
                }
            }
        },
        cfg);
}

}  // namespace slm::fault
