#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "rtos/core.hpp"
#include "sim/time.hpp"

namespace slm::obs {

/// One detected unbounded-priority-inversion window: while `blocked` (the
/// high-priority task) waited for `resource` held by `holder`, a middle-
/// priority task `intervener` — not part of the blocking chain, so its
/// running contributes nothing to releasing the resource — occupied the CPU
/// from `start` to `end`. Under Protocol::None such windows can grow without
/// bound (the Mars-Pathfinder failure mode); priority inheritance or ceiling
/// keeps them from opening at all because the holder runs boosted.
struct InversionFinding {
    SimTime start;
    SimTime end;
    std::string blocked;     ///< the starved high-priority task
    std::string holder;      ///< direct holder of the resource
    std::string intervener;  ///< middle-priority task that ran instead
    std::string resource;    ///< the contended mutex
    /// The blocking chain at detection time: blocked, its holder, that
    /// holder's holder (if itself blocked), ... — the tasks whose progress
    /// *would* release `blocked`.
    std::vector<std::string> chain;
};

/// Online per-task timing analytics, computed from OsCore observer callbacks
/// at the instant each event happens — no post-hoc trace walk, no tracer
/// required. Attach to a core and every number lands in the given Registry:
///
///   - slm_task_sched_latency_ns   histogram, ready -> dispatch per task
///   - slm_task_response_ns        histogram, release -> completion per job
///   - slm_task_blocking_ns_total  counter, time spent blocked on mutexes
///   - slm_task_preempted_total    counter, involuntary CPU losses
///   - slm_task_jobs_total         counter, completed jobs
///   - slm_task_missed_total       counter, jobs completed past the deadline
///   - slm_os_switches_total       counter, dispatches that changed the task
///   - slm_os_dispatches_total     counter, all dispatches
///   - slm_os_isr_total            counter, ISR entries
///   - slm_os_inversions_total     counter, inversion windows detected
///   - slm_os_crashes_total        counter, injected task crashes
///   - slm_os_restarts_total       counter, task_restart() recoveries
///   - slm_os_watchdog_total       counter, watchdog expirations
///   - slm_task_miss_recovery_ns   histogram, first miss -> next on-time job
///
/// Per-task series carry {task="<name>"}; all series carry {cpu="<cpu_name>"}.
/// Everything is derived from personality-neutral OsCore events, so the same
/// model run under the paper API and under ITRON produces identical values
/// (pinned by tests/test_conformance.cpp).
///
/// The priority-inversion detector watches dispatches while some task is
/// blocked on a mutex: when the dispatched task is neither in the blocked
/// task's blocking chain nor of higher effective priority, the chain is
/// starved — an unbounded-inversion window opens. It closes when a chain
/// member gets the CPU (progress) or the blocked task acquires the resource.
/// Findings (with the full chain) accumulate in findings().
class RtosAnalytics final : public rtos::OsObserver {
public:
    /// Attaches to `os` (OsCore::add_observer); detaches in the destructor.
    /// The registry must outlive this object; the core may die first — its
    /// teardown notification clears the back-reference, and every collected
    /// number lives in the registry/findings, so results stay readable after
    /// the model run returns.
    RtosAnalytics(rtos::OsCore& os, Registry& registry);
    ~RtosAnalytics() override;

    RtosAnalytics(const RtosAnalytics&) = delete;
    RtosAnalytics& operator=(const RtosAnalytics&) = delete;

    // ---- OsObserver ----
    void on_task_state(const rtos::Task& t, rtos::TaskState from, rtos::TaskState to,
                       SimTime now) override;
    void on_preempt(const rtos::Task& preempted, const rtos::Task& by,
                    SimTime now) override;
    void on_completion(const rtos::Task& t, SimTime response, bool missed,
                       SimTime now) override;
    void on_isr(const std::string& irq_name, SimTime now) override;
    void on_resource_block(const rtos::Task& blocked, const rtos::Task& holder,
                           const std::string& resource, SimTime now) override;
    void on_resource_acquire(const rtos::Task& t, const std::string& resource,
                             SimTime waited, SimTime now) override;
    void on_resource_release(const rtos::Task& t, const std::string& resource,
                             SimTime now) override;
    void on_task_crash(const rtos::Task& t, SimTime now) override;
    void on_task_restart(const rtos::Task& t, SimTime now) override;
    void on_watchdog(const rtos::Task& t, SimTime now) override;
    void on_core_teardown() override;

    // ---- results ----
    [[nodiscard]] const std::vector<InversionFinding>& findings() const {
        return findings_;
    }
    /// Scheduling-latency histogram of one task (nullptr before its first
    /// observed event). Shortcut into the registry.
    [[nodiscard]] const Histogram* latency_histogram(const std::string& task) const;
    /// Response-time histogram of one task (nullptr before its first job).
    [[nodiscard]] const Histogram* response_histogram(const std::string& task) const;

    [[nodiscard]] Registry& registry() { return reg_; }

private:
    /// Per-task lazily-created series handles + transient state.
    struct Watch {
        Histogram* latency = nullptr;
        Histogram* response = nullptr;
        Histogram* miss_recovery = nullptr;
        Counter* blocking_ns = nullptr;
        Counter* preempted = nullptr;
        Counter* jobs = nullptr;
        Counter* missed = nullptr;
        SimTime ready_since{};
        bool ready_valid = false;
        SimTime miss_since{};   ///< first miss of the current miss streak
        bool miss_open = false; ///< inside a streak (missing until on-time job)
    };
    /// One wait-for edge: the task this struct is keyed by waits for
    /// `resource`, currently held by `holder`.
    struct BlockEdge {
        const rtos::Task* holder = nullptr;
        std::string resource;
        SimTime since{};
    };
    /// An open inversion window for one blocked task.
    struct OpenWindow {
        SimTime start{};
        std::string intervener;
        std::string holder;
        std::string resource;
        std::vector<std::string> chain;
    };

    Watch& watch(const rtos::Task& t);
    [[nodiscard]] Labels task_labels(const rtos::Task& t) const;
    /// Blocking chain of `t` as task pointers: holder, holder's holder, ...
    /// Cycle-safe (a deadlock yields a finite chain).
    [[nodiscard]] std::vector<const rtos::Task*> chain_of(const rtos::Task& t) const;
    void check_inversions(const rtos::Task& running, SimTime now);
    void close_window(const rtos::Task& blocked, SimTime now);

    rtos::OsCore* os_;  ///< nulled by on_core_teardown when the core dies first
    Registry& reg_;
    Labels cpu_labels_;
    Counter* switches_ = nullptr;
    Counter* dispatches_ = nullptr;
    Counter* isrs_ = nullptr;
    Counter* inversions_ = nullptr;
    Counter* crashes_ = nullptr;
    Counter* restarts_ = nullptr;
    Counter* watchdogs_ = nullptr;
    const rtos::Task* last_running_ = nullptr;
    std::unordered_map<const rtos::Task*, Watch> watches_;
    std::unordered_map<const rtos::Task*, BlockEdge> blocked_;
    std::unordered_map<const rtos::Task*, OpenWindow> windows_;
    std::vector<InversionFinding> findings_;
};

}  // namespace slm::obs
