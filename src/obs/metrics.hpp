#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace slm::sim {
class Kernel;
}
namespace slm::rtos {
class OsCore;
class Task;
}

namespace slm::obs {

/// Label set attached to one metric series, e.g. {{"task","driver"},{"cpu",
/// "DSP"}}. Registered label sets are sorted by key so the same logical
/// labels always address the same series regardless of spelling order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
public:
    void inc(std::uint64_t delta = 1) { value_ += delta; }
    [[nodiscard]] std::uint64_t value() const { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Point-in-time value. Either set explicitly or sourced from a callback —
/// callback gauges are how the pre-existing stats structs (sim::KernelStats,
/// rtos::RtosStats, rtos::TaskStats) are re-registered through the registry
/// without duplicating their bookkeeping: the gauge reads the live struct at
/// export time.
class Gauge {
public:
    void set(double v) { value_ = v; }
    void add(double d) { value_ += d; }
    /// Install a read-through source; it overrides any set() value.
    void set_source(std::function<double()> fn) { source_ = std::move(fn); }
    [[nodiscard]] double value() const { return source_ ? source_() : value_; }

private:
    double value_ = 0.0;
    std::function<double()> source_;
};

/// Fixed-bucket histogram with cumulative-bucket export (Prometheus semantics)
/// and quantile estimation by linear interpolation within the bucket — the
/// standard online approximation whose error is bounded by bucket width.
/// Observations are O(log buckets); no samples are stored.
class Histogram {
public:
    /// `bounds` are inclusive upper bounds of the finite buckets, strictly
    /// increasing; an implicit +Inf bucket tops them off.
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }
    [[nodiscard]] double mean() const {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /// Estimated q-quantile (q in [0,1]), interpolated within the bucket that
    /// holds the target rank; the +Inf bucket reports the observed max.
    [[nodiscard]] double quantile(double q) const;

    /// Finite bucket upper bounds (the +Inf bucket is implicit).
    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    /// Per-bucket (non-cumulative) counts; back() is the +Inf bucket.
    [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
        return counts_;
    }

    /// Default bounds for nanosecond-valued timing histograms: 1us..100ms in
    /// a 1-2-5 ladder. Chosen so scheduling latencies and response times of
    /// typical models land mid-range.
    [[nodiscard]] static std::vector<double> default_time_bounds_ns();

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;  ///< size bounds_.size() + 1 (+Inf last)
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Named home for every measured number in a model run. Families are
/// identified by metric name; series within a family by label set. Lookup is
/// get-or-create, so producers and re-registration helpers can address the
/// same series independently. Exports Prometheus text exposition format
/// (validated by ci/check_prom.sh) and JSON.
///
/// Metric and label names must match [a-zA-Z_:][a-zA-Z0-9_:]* (the Prometheus
/// charset); a family keeps one kind — re-requesting a name with a different
/// kind asserts.
class Registry {
public:
    Counter& counter(const std::string& name, const std::string& help,
                     Labels labels = {});
    Gauge& gauge(const std::string& name, const std::string& help, Labels labels = {});
    /// Convenience: register a callback-sourced gauge in one call.
    Gauge& gauge_fn(const std::string& name, const std::string& help,
                    std::function<double()> source, Labels labels = {});
    /// `bounds` must agree across series of one family (asserted).
    Histogram& histogram(const std::string& name, const std::string& help,
                         std::vector<double> bounds, Labels labels = {});

    /// Series lookup without creation; nullptr when absent (or wrong kind).
    [[nodiscard]] const Counter* find_counter(const std::string& name,
                                              const Labels& labels = {}) const;
    [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                          const Labels& labels = {}) const;
    [[nodiscard]] const Histogram* find_histogram(const std::string& name,
                                                  const Labels& labels = {}) const;

    [[nodiscard]] std::size_t family_count() const { return families_.size(); }

    /// Prometheus text exposition format, families sorted by name, series in
    /// registration order. Histograms expand to _bucket/_sum/_count.
    void write_prometheus(std::ostream& os) const;

    /// JSON: {"metrics":[{name, kind, help, series:[{labels, value|histogram}]}]}.
    /// Strings are escaped with trace::json_escape (shared with the Chrome
    /// trace exporter).
    void write_json(std::ostream& os) const;

private:
    enum class Kind { Counter, Gauge, Histogram };
    struct Series {
        Labels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };
    struct Family {
        std::string name;
        std::string help;
        Kind kind = Kind::Counter;
        std::vector<Series> series;
    };

    Family& family(const std::string& name, const std::string& help, Kind kind);
    Series& series(Family& f, Labels labels);
    [[nodiscard]] const Series* find(const std::string& name, const Labels& labels,
                                     Kind kind) const;

    std::vector<Family> families_;  ///< kept sorted by name
};

// ---- re-registration of the pre-existing stats structs ----
//
// Every number the kernel and OS already count gets one home in the registry:
// callback gauges read the live structs at export time (zero steady-state
// cost, no double bookkeeping). The referenced objects must outlive the
// registry's exports.

/// sim::KernelStats -> slm_kernel_* gauges (+ slm_kernel_now_ns).
void register_kernel_stats(Registry& reg, const sim::Kernel& kernel,
                           Labels base_labels = {});

/// rtos::RtosStats -> slm_os_* gauges, labeled {cpu="<cpu_name>"} plus
/// `base_labels`, and every task existing at call time via
/// register_task_stats(). Tasks created later can be added by calling again
/// (re-registration is idempotent) or are picked up automatically when an
/// obs::RtosAnalytics observer is attached.
void register_os_stats(Registry& reg, const rtos::OsCore& os, Labels base_labels = {});

/// rtos::TaskStats of one task -> slm_task_* gauges, labeled {task="<name>"}
/// plus `base_labels`.
void register_task_stats(Registry& reg, const rtos::Task& task, Labels base_labels = {});

}  // namespace slm::obs
