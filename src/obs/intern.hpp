#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/assert.hpp"

namespace slm::obs {

/// The interning machinery shared by the hot-path recording sinks
/// (BinaryTraceSink, SpanRecorder): a deduplicating string table with a
/// direct-mapped lookup cache, and fixed-width record storage in stable
/// chunks. Factored out so every fixed-width recorder resolves strings and
/// appends records the same way — and the costs are benched once
/// (bench_trace, bench_spans).

/// Deduplicating string table: string -> dense 32-bit id, id 0 always the
/// empty string. A direct-mapped cache in front of the map is indexed by a
/// hash of the string_view's *pointer*: callers pass views of long-lived
/// std::strings (task names, cpu names), so the same pointer recurs on the
/// hot path. A hit is *verified* by comparing the incoming bytes against the
/// interned string's bytes (which point into stable deque storage), so a
/// reused pointer or a colliding slot degrades to a map lookup, never to a
/// wrong id.
class StringTable {
public:
    StringTable() { reset_slot0(); }

    [[nodiscard]] std::uint32_t intern(std::string_view s) {
        if (s.empty()) {
            return 0;
        }
        auto h = reinterpret_cast<std::uintptr_t>(s.data());
        h ^= (h >> 4) ^ (h >> 11);
        CacheSlot& slot = cache_[h & (kCacheSize - 1)];
        // Verify by content, not by pointer: the slot only *suggests* an id.
        if (slot.size == s.size() && slot.data != nullptr &&
            std::memcmp(slot.data, s.data(), s.size()) == 0) {
            return slot.id;
        }
        std::uint32_t id;
        if (const auto it = ids_.find(s); it != ids_.end()) {
            id = it->second;
        } else {
            id = static_cast<std::uint32_t>(strings_.size());
            strings_.emplace_back(s);  // deque: stable storage for the map's keys
            ids_.emplace(std::string_view{strings_.back()}, id);
        }
        slot = CacheSlot{strings_[id].data(), s.size(), id};
        return id;
    }

    /// The interned string for `id` (asserts on out-of-range ids).
    [[nodiscard]] const std::string& str(std::uint32_t id) const {
        SLM_ASSERT(id < strings_.size(), "string id out of range");
        return strings_[id];
    }

    [[nodiscard]] std::size_t count() const { return strings_.size(); }

    /// Append a string under the next id *without* deduplication — the
    /// file-format load path appends table entries exactly as saved, so ids
    /// embedded in the record stream stay valid even for a stream whose table
    /// carries duplicates.
    void push_raw(std::string s) {
        strings_.push_back(std::move(s));
        ids_.emplace(std::string_view{strings_.back()},
                     static_cast<std::uint32_t>(strings_.size() - 1));
    }

    void clear() {
        strings_.clear();
        ids_.clear();
        for (CacheSlot& s : cache_) {
            s = CacheSlot{};
        }
        reset_slot0();
    }

private:
    struct CacheSlot {
        const char* data = nullptr;  ///< interned bytes (not the caller's)
        std::size_t size = 0;
        std::uint32_t id = 0;
    };
    static constexpr std::size_t kCacheSize = 256;  // power of two

    void reset_slot0() {
        strings_.emplace_back();  // id 0 is always the empty string
        ids_.emplace(std::string_view{strings_.back()}, 0);
    }

    std::deque<std::string> strings_;  ///< stable storage; index == id
    std::unordered_map<std::string_view, std::uint32_t> ids_;
    CacheSlot cache_[kCacheSize];
};

/// Append-only fixed-width record storage in fixed-size chunks: appends never
/// reallocate-and-copy (the dominant cost of a growing vector at trace
/// sizes), the index math is two shifts, and element addresses are stable —
/// so a recorder may patch an earlier record in place (SpanRecorder closes
/// spans that way). 2^Shift records per chunk.
template <typename Rec, std::size_t Shift = 16>
class RecordLog {
public:
    static constexpr std::size_t kChunkSize = std::size_t{1} << Shift;
    static constexpr std::size_t kChunkMask = kChunkSize - 1;

    /// Append and return the record's index.
    std::size_t append(const Rec& r) {
        if (tail_ == tail_end_) {
            grow();
        }
        *tail_++ = r;
        return size_++;
    }

    [[nodiscard]] const Rec& operator[](std::size_t i) const {
        return chunks_[i >> Shift][i & kChunkMask];
    }
    /// Mutable access for in-place patching of an already-appended record.
    [[nodiscard]] Rec& at(std::size_t i) { return chunks_[i >> Shift][i & kChunkMask]; }

    [[nodiscard]] std::size_t size() const { return size_; }

    void clear() {
        chunks_.clear();
        tail_ = tail_end_ = nullptr;
        size_ = 0;
    }

private:
    void grow() {
        // for_overwrite: skip zero-initialization — every slot is written
        // before it is ever read (size_ gates all reads).
        chunks_.push_back(std::make_unique_for_overwrite<Rec[]>(kChunkSize));
        tail_ = chunks_.back().get();
        tail_end_ = tail_ + kChunkSize;
    }

    std::vector<std::unique_ptr<Rec[]>> chunks_;
    Rec* tail_ = nullptr;      ///< next write position in the last chunk
    Rec* tail_end_ = nullptr;  ///< end of the last chunk
    std::size_t size_ = 0;
};

}  // namespace slm::obs
