#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/intern.hpp"
#include "rtos/core.hpp"
#include "sim/time.hpp"

namespace slm::obs {

class Registry;

/// Token-level causal span tracing (docs/span-tracing.md).
///
/// A *span* is a named time interval (or instant) with an optional parent
/// span and an optional Token{id, born} correlation. Narrow hooks emit spans
/// from three layers: the RTOS core (task-state timeline, ISR entries,
/// channel operations — via SpanTracer, an OsObserver), the architecture
/// layer (bus transfers — via BusLink's post hook), and the sys layer (job /
/// recv / send windows plus latency records — via TaskCtx). Together they
/// form a span DAG over which extract_critical_paths() computes, for every
/// recorded end-to-end latency sample, an *exact* per-category breakdown:
/// the sample's window [t_record - sample, t_record) is partitioned into
/// disjoint, contiguous integer-nanosecond segments following the token's
/// custody chain, so the per-category sums equal the observed latency by
/// construction — no estimation, no sampling.
///
/// Everything is deaf by default: a null SpanSink costs one pointer test per
/// hook site (benched ~0 in BENCH_spans.json), and a sweep records into
/// per-candidate SpanRecorders so dumps stay byte-identical at any --jobs
/// (ci/check_spans.sh).

/// What a span describes. The first five kinds are the task-state timeline
/// mirrored from rtos::TaskState by SpanTracer; the rest are emitted by the
/// sys/arch layers.
enum class SpanKind : std::uint32_t {
    TaskRun,      ///< task holds the CPU (TaskState::Running)
    TaskReady,    ///< task runnable in the ready queue
    TaskPreempt,  ///< ready because it was just preempted (on_preempt)
    TaskBlock,    ///< blocked in event_wait (TaskState::WaitingEvent)
    TaskIdle,     ///< sleeping / between periodic releases / suspended
    Job,          ///< one behavior invocation (sys::TaskCtx)
    Recv,         ///< blocking receive window on a channel
    Send,         ///< send window on a channel (incl. bus occupancy)
    BusXfer,      ///< one bus transfer (arbitration + data phases)
    Isr,          ///< instant: ISR body entered
    ChannelOp,    ///< instant: OS channel operation (queue/semaphore)
    Latency,      ///< instant: end-to-end latency sample (value = ns)
};
inline constexpr std::size_t kSpanKindCount = 12;

[[nodiscard]] const char* to_string(SpanKind k);

inline constexpr std::uint64_t kNoTokenId = ~std::uint64_t{0};

/// Token correlation carried by a span: the sys::Token's id + birth time.
struct TokenRef {
    std::uint64_t id = kNoTokenId;
    std::uint64_t born_ns = 0;

    [[nodiscard]] bool valid() const { return id != kNoTokenId; }
};

/// Span emission interface. Hooks hold a SpanSink* and test it for null
/// before every call — the disabled configuration executes no span code at
/// all. Span ids are nonzero and unique per sink; 0 is "no parent".
class SpanSink {
public:
    virtual ~SpanSink() = default;

    /// Open a span at `t`; returns its id. `pe` is the hosting processing
    /// element ("" for environment/bus spans), `name` the primary subject
    /// (task, channel, irq), `aux` a secondary subject (the task performing a
    /// Recv/Send, the bus of a BusXfer).
    virtual std::uint64_t begin_span(SimTime t, SpanKind kind, std::string_view pe,
                                     std::string_view name, std::string_view aux = {},
                                     TokenRef token = {}, std::uint64_t parent = 0) = 0;
    /// Close span `id` at `t` (>= its begin time).
    virtual void end_span(std::uint64_t id, SimTime t) = 0;
    /// Attach/overwrite the token correlation of an open span (a Recv learns
    /// its token only when the receive returns).
    virtual void set_token(std::uint64_t id, TokenRef token) = 0;
    /// Attach a kind-specific payload (Latency: the sample in ns).
    virtual void set_value(std::uint64_t id, std::uint64_t value) = 0;
    /// Re-label a span after the fact (a TaskReady span becomes TaskPreempt
    /// when on_preempt arrives right after the state transition).
    virtual void reclassify(std::uint64_t id, SpanKind kind) = 0;

    /// Zero-duration span.
    std::uint64_t instant(SimTime t, SpanKind kind, std::string_view pe,
                          std::string_view name, std::string_view aux = {},
                          TokenRef token = {}, std::uint64_t parent = 0,
                          std::uint64_t value = 0) {
        const std::uint64_t id = begin_span(t, kind, pe, name, aux, token, parent);
        if (value != 0) {
            set_value(id, value);
        }
        end_span(id, t);
        return id;
    }

    /// Emit an already-finished span in one call (used by after-the-fact
    /// hooks like BusLink's post hook).
    std::uint64_t complete(SimTime begin, SimTime end, SpanKind kind,
                           std::string_view pe, std::string_view name,
                           std::string_view aux = {}, TokenRef token = {},
                           std::uint64_t parent = 0) {
        const std::uint64_t id = begin_span(begin, kind, pe, name, aux, token, parent);
        end_span(id, end);
        return id;
    }
};

/// The recording SpanSink: fixed-width 64-byte records over the interned
/// string table shared with BinaryTraceSink (obs/intern.hpp). Span id =
/// record index + 1, so lookup is O(1) and ids are dense. Emission order is
/// simulation order, hence deterministic; write_span_json() dumps are
/// byte-identical across repeat runs and across sweep --jobs counts.
class SpanRecorder final : public SpanSink {
public:
    /// End timestamp of a still-open span.
    static constexpr std::uint64_t kOpenEnd = ~std::uint64_t{0};

    struct SpanRec {
        std::uint64_t t_begin_ns;
        std::uint64_t t_end_ns;  ///< kOpenEnd while open; == begin for instants
        std::uint64_t token_id;  ///< kNoTokenId = uncorrelated
        std::uint64_t token_born_ns;
        std::uint64_t parent;  ///< span id; 0 = root
        std::uint64_t value;   ///< kind-specific payload
        std::uint32_t kind;    ///< SpanKind
        std::uint32_t pe;      ///< interned
        std::uint32_t name;    ///< interned
        std::uint32_t aux;     ///< interned
    };
    static_assert(sizeof(SpanRec) == 64);

    std::uint64_t begin_span(SimTime t, SpanKind kind, std::string_view pe,
                             std::string_view name, std::string_view aux = {},
                             TokenRef token = {}, std::uint64_t parent = 0) override;
    void end_span(std::uint64_t id, SimTime t) override;
    void set_token(std::uint64_t id, TokenRef token) override;
    void set_value(std::uint64_t id, std::uint64_t value) override;
    void reclassify(std::uint64_t id, SpanKind kind) override;

    [[nodiscard]] const SpanRec& rec(std::size_t i) const { return records_[i]; }
    [[nodiscard]] std::size_t size() const { return records_.size(); }
    [[nodiscard]] const std::string& str(std::uint32_t id) const {
        return strings_.str(id);
    }
    [[nodiscard]] std::size_t string_count() const { return strings_.count(); }
    /// Spans begun but not yet ended.
    [[nodiscard]] std::size_t open_count() const { return open_; }

    void clear();

private:
    [[nodiscard]] SpanRec& rec_of(std::uint64_t id);

    RecordLog<SpanRec> records_;
    StringTable strings_;
    std::size_t open_ = 0;
};

// ---- critical-path extraction ----

/// Latency categories of a critical-path segment. The category partition of
/// a window is exact (disjoint integer-ns segments covering the window); the
/// labels classify each segment by who held the token and what that holder's
/// RTOS state was (docs/span-tracing.md spells out the rules).
enum class PathCategory : std::uint32_t {
    Compute,  ///< holder task Running outside its send window
    Bus,      ///< holder task Running inside a send window (occupancy + arbitration)
    Ready,    ///< holder or receiver runnable but not scheduled
    Preempt,  ///< ready specifically because it was preempted
    Block,    ///< holder task blocked in event_wait
    Deliver,  ///< token in flight: ISR/semaphore delivery, receiver blocked
    DstBusy,  ///< token in flight while the receiver runs other work
    Env,      ///< held by the environment (a stimulus process, no RTOS states)
    Other,    ///< holder state unknown (gaps before first activation, idle)
};
inline constexpr std::size_t kPathCategoryCount = 9;

[[nodiscard]] const char* to_string(PathCategory c);

/// One segment of a critical path: [begin_ns, end_ns) attributed to
/// `category`, with `who` the holder (task name, channel name, or stimulus).
struct PathSegment {
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    PathCategory category = PathCategory::Other;
    std::string who;
};

/// The exact latency breakdown of one recorded sample: contiguous segments
/// covering [anchor_ns, recorded_ns) — so sum(segments) == total_ns ==
/// the observed sample, in integer nanoseconds, by construction.
struct CriticalPath {
    bool valid = false;
    std::uint64_t token_id = kNoTokenId;
    std::uint64_t born_ns = 0;
    std::uint64_t anchor_ns = 0;    ///< recorded_ns - sample
    std::uint64_t recorded_ns = 0;  ///< when the sample was reported
    std::uint64_t total_ns = 0;     ///< the sample itself
    std::size_t hops = 0;           ///< custody changes (send/recv boundaries)
    std::string sink;               ///< task that reported the sample
    std::vector<PathSegment> segments;
    std::array<std::uint64_t, kPathCategoryCount> by_category{};

    [[nodiscard]] std::uint64_t category_sum() const;
    /// True when the segment partition reproduces the sample exactly — the
    /// invariant bench_spans and check_spans gate on.
    [[nodiscard]] bool exact() const { return valid && category_sum() == total_ns; }
    /// The dominant category (largest share; ties resolve to the smaller
    /// enum value, so the order above is the tie-break order).
    [[nodiscard]] PathCategory bottleneck() const;
};

/// One CriticalPath per Latency record, in recording order.
[[nodiscard]] std::vector<CriticalPath> extract_critical_paths(const SpanRecorder& rec);

/// The path of the worst (largest-sample) latency record; invalid when the
/// recorder holds no Latency records.
[[nodiscard]] CriticalPath worst_critical_path(const SpanRecorder& rec);

// ---- exporters ----

/// Canonical span dump (schema "slm-span-dump-v1"): a header line followed by
/// one compact JSON object per span in emission order, integer fields only.
/// Byte-identical across runs and --jobs counts for deterministic models —
/// the ci/check_spans.sh contract.
void write_span_json(std::ostream& os, const SpanRecorder& rec);

/// Chrome trace-event / Perfetto JSON: one process per PE (plus one per bus),
/// two rows per task (state timeline + job/recv/send windows), flow arrows
/// following each token's cross-channel hops, instants for ISRs and latency
/// records. Open spans are clipped at the last recorded timestamp.
void write_perfetto_json(std::ostream& os, const SpanRecorder& rec);

/// Snapshot the recorder into `slm_span_*` gauge families (record/string/
/// open/latency-record counts plus the worst critical path's per-category
/// breakdown). Values are copied at call time; the recorder need not outlive
/// the registry.
void register_span_stats(Registry& reg, const SpanRecorder& rec);

// ---- RTOS hook ----

/// OsObserver that mirrors one core's scheduling activity into a SpanSink:
/// per-task state spans (TaskRun/TaskReady/TaskPreempt/TaskBlock/TaskIdle),
/// ISR-entry instants, and channel-operation instants. Attaches in the
/// constructor, detaches in the destructor (or at core teardown, whichever
/// comes first). Purely observational — scheduling is unchanged, and traces
/// recorded with and without a SpanTracer are byte-identical.
class SpanTracer final : public rtos::OsObserver {
public:
    SpanTracer(rtos::OsCore& core, SpanSink& sink);
    ~SpanTracer() override;

    SpanTracer(const SpanTracer&) = delete;
    SpanTracer& operator=(const SpanTracer&) = delete;

    void on_task_state(const rtos::Task& t, rtos::TaskState from, rtos::TaskState to,
                       SimTime now) override;
    void on_preempt(const rtos::Task& preempted, const rtos::Task& by,
                    SimTime now) override;
    void on_isr(const std::string& irq_name, SimTime now) override;
    void on_channel_op(const std::string& channel, const char* op, SimTime now) override;
    void on_core_teardown() override;

private:
    rtos::OsCore* core_;
    SpanSink& sink_;
    std::unordered_map<const rtos::Task*, std::uint64_t> open_;
};

}  // namespace slm::obs
