#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "rtos/core.hpp"
#include "sim/assert.hpp"
#include "sim/kernel.hpp"
#include "trace/trace.hpp"

namespace slm::obs {

namespace {

bool valid_name(const std::string& s) {
    if (s.empty()) {
        return false;
    }
    const auto ok = [](char c, bool first) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
               c == ':' || (!first && c >= '0' && c <= '9');
    };
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (!ok(s[i], i == 0)) {
            return false;
        }
    }
    return true;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string prom_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

/// Render a double the way Prometheus exposition expects: integers without
/// exponent noise, everything else shortest-roundtrip-ish via %.17g trimmed.
std::string prom_number(double v) {
    if (std::isinf(v)) {
        return v > 0 ? "+Inf" : "-Inf";
    }
    if (std::isnan(v)) {
        return "NaN";
    }
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    return buf;
}

std::string label_block(const Labels& labels) {
    if (labels.empty()) {
        return {};
    }
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += k + "=\"" + prom_escape(v) + "\"";
    }
    out += '}';
    return out;
}

/// Label block with one extra label appended (for histogram `le`).
std::string label_block_plus(const Labels& labels, const std::string& key,
                             const std::string& value) {
    Labels ext = labels;
    ext.emplace_back(key, value);
    return label_block(ext);
}

}  // namespace

// ---- Histogram ----

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    SLM_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
               "Histogram bounds must be strictly increasing");
    counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += v;
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
}

double Histogram::quantile(double q) const {
    SLM_ASSERT(q >= 0.0 && q <= 1.0, "quantile() wants q in [0,1]");
    if (count_ == 0) {
        return 0.0;
    }
    const double rank = q * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const std::uint64_t prev = cum;
        cum += counts_[b];
        if (static_cast<double>(cum) >= rank && counts_[b] > 0) {
            if (b == counts_.size() - 1) {
                return max_;  // +Inf bucket: best available point estimate
            }
            const double lo = b == 0 ? std::min(min_, bounds_[0]) : bounds_[b - 1];
            const double hi = bounds_[b];
            const double frac =
                (rank - static_cast<double>(prev)) / static_cast<double>(counts_[b]);
            // Interpolation can overshoot the actually-observed range when a
            // bucket is much wider than its samples; the observed min/max are
            // exact, so clamp to them.
            return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min_, max_);
        }
    }
    return max_;
}

std::vector<double> Histogram::default_time_bounds_ns() {
    std::vector<double> b;
    for (double decade = 1e3; decade <= 1e7; decade *= 10.0) {
        b.push_back(decade);
        b.push_back(2.0 * decade);
        b.push_back(5.0 * decade);
    }
    b.push_back(1e8);  // 100 ms
    return b;
}

// ---- Registry ----

Registry::Family& Registry::family(const std::string& name, const std::string& help,
                                   Kind kind) {
    SLM_ASSERT(valid_name(name), "metric name must match [a-zA-Z_:][a-zA-Z0-9_:]*");
    const auto it = std::lower_bound(
        families_.begin(), families_.end(), name,
        [](const Family& f, const std::string& n) { return f.name < n; });
    if (it != families_.end() && it->name == name) {
        SLM_ASSERT(it->kind == kind, "metric re-registered with a different kind");
        return *it;
    }
    Family f;
    f.name = name;
    f.help = help;
    f.kind = kind;
    return *families_.insert(it, std::move(f));
}

Registry::Series& Registry::series(Family& f, Labels labels) {
    std::sort(labels.begin(), labels.end());
    for (const auto& [k, v] : labels) {
        SLM_ASSERT(valid_name(k), "label name must match [a-zA-Z_:][a-zA-Z0-9_:]*");
    }
    for (Series& s : f.series) {
        if (s.labels == labels) {
            return s;
        }
    }
    Series s;
    s.labels = std::move(labels);
    f.series.push_back(std::move(s));
    return f.series.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
    Series& s = series(family(name, help, Kind::Counter), std::move(labels));
    if (!s.counter) {
        s.counter = std::make_unique<Counter>();
    }
    return *s.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help, Labels labels) {
    Series& s = series(family(name, help, Kind::Gauge), std::move(labels));
    if (!s.gauge) {
        s.gauge = std::make_unique<Gauge>();
    }
    return *s.gauge;
}

Gauge& Registry::gauge_fn(const std::string& name, const std::string& help,
                          std::function<double()> source, Labels labels) {
    Gauge& g = gauge(name, help, std::move(labels));
    g.set_source(std::move(source));
    return g;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<double> bounds, Labels labels) {
    Series& s = series(family(name, help, Kind::Histogram), std::move(labels));
    if (!s.histogram) {
        s.histogram = std::make_unique<Histogram>(std::move(bounds));
    } else {
        SLM_ASSERT(s.histogram->bounds() == bounds,
                   "histogram series re-registered with different bounds");
    }
    return *s.histogram;
}

const Registry::Series* Registry::find(const std::string& name, const Labels& labels,
                                       Kind kind) const {
    const auto it = std::lower_bound(
        families_.begin(), families_.end(), name,
        [](const Family& f, const std::string& n) { return f.name < n; });
    if (it == families_.end() || it->name != name || it->kind != kind) {
        return nullptr;
    }
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    for (const Series& s : it->series) {
        if (s.labels == sorted) {
            return &s;
        }
    }
    return nullptr;
}

const Counter* Registry::find_counter(const std::string& name, const Labels& labels) const {
    const Series* s = find(name, labels, Kind::Counter);
    return s != nullptr ? s->counter.get() : nullptr;
}

const Gauge* Registry::find_gauge(const std::string& name, const Labels& labels) const {
    const Series* s = find(name, labels, Kind::Gauge);
    return s != nullptr ? s->gauge.get() : nullptr;
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          const Labels& labels) const {
    const Series* s = find(name, labels, Kind::Histogram);
    return s != nullptr ? s->histogram.get() : nullptr;
}

void Registry::write_prometheus(std::ostream& os) const {
    for (const Family& f : families_) {
        const char* type = f.kind == Kind::Counter    ? "counter"
                           : f.kind == Kind::Gauge    ? "gauge"
                                                      : "histogram";
        os << "# HELP " << f.name << ' ' << f.help << '\n';
        os << "# TYPE " << f.name << ' ' << type << '\n';
        for (const Series& s : f.series) {
            switch (f.kind) {
                case Kind::Counter:
                    os << f.name << label_block(s.labels) << ' ' << s.counter->value()
                       << '\n';
                    break;
                case Kind::Gauge:
                    os << f.name << label_block(s.labels) << ' '
                       << prom_number(s.gauge->value()) << '\n';
                    break;
                case Kind::Histogram: {
                    const Histogram& h = *s.histogram;
                    std::uint64_t cum = 0;
                    for (std::size_t b = 0; b < h.bounds().size(); ++b) {
                        cum += h.bucket_counts()[b];
                        os << f.name << "_bucket"
                           << label_block_plus(s.labels, "le",
                                               prom_number(h.bounds()[b]))
                           << ' ' << cum << '\n';
                    }
                    os << f.name << "_bucket"
                       << label_block_plus(s.labels, "le", "+Inf") << ' ' << h.count()
                       << '\n';
                    os << f.name << "_sum" << label_block(s.labels) << ' '
                       << prom_number(h.sum()) << '\n';
                    os << f.name << "_count" << label_block(s.labels) << ' '
                       << h.count() << '\n';
                    break;
                }
            }
        }
    }
}

void Registry::write_json(std::ostream& os) const {
    const auto esc = [](const std::string& s) { return trace::json_escape(s); };
    os << "{\n  \"metrics\": [";
    bool first_family = true;
    for (const Family& f : families_) {
        const char* kind = f.kind == Kind::Counter    ? "counter"
                           : f.kind == Kind::Gauge    ? "gauge"
                                                      : "histogram";
        os << (first_family ? "\n" : ",\n");
        first_family = false;
        os << "    {\"name\": \"" << esc(f.name) << "\", \"kind\": \"" << kind
           << "\", \"help\": \"" << esc(f.help) << "\", \"series\": [";
        bool first_series = true;
        for (const Series& s : f.series) {
            os << (first_series ? "\n" : ",\n");
            first_series = false;
            os << "      {\"labels\": {";
            bool first_label = true;
            for (const auto& [k, v] : s.labels) {
                os << (first_label ? "" : ", ");
                first_label = false;
                os << '"' << esc(k) << "\": \"" << esc(v) << '"';
            }
            os << "}, ";
            switch (f.kind) {
                case Kind::Counter:
                    os << "\"value\": " << s.counter->value();
                    break;
                case Kind::Gauge:
                    os << "\"value\": " << prom_number(s.gauge->value());
                    break;
                case Kind::Histogram: {
                    const Histogram& h = *s.histogram;
                    os << "\"count\": " << h.count() << ", \"sum\": "
                       << prom_number(h.sum()) << ", \"buckets\": [";
                    for (std::size_t b = 0; b < h.bucket_counts().size(); ++b) {
                        os << (b == 0 ? "" : ", ");
                        os << "{\"le\": ";
                        if (b < h.bounds().size()) {
                            os << prom_number(h.bounds()[b]);
                        } else {
                            os << "\"+Inf\"";
                        }
                        os << ", \"n\": " << h.bucket_counts()[b] << '}';
                    }
                    os << ']';
                    break;
                }
            }
            os << '}';
        }
        os << "\n    ]}";
    }
    os << "\n  ]\n}\n";
}

// ---- stats-struct re-registration ----

void register_kernel_stats(Registry& reg, const sim::Kernel& kernel, Labels base) {
    const sim::Kernel* k = &kernel;
    const auto g = [&](const char* name, const char* help, auto getter) {
        reg.gauge_fn(name, help, [k, getter] { return getter(*k); }, base);
    };
    g("slm_kernel_processes_created", "SLDL processes created",
      [](const sim::Kernel& kn) { return double(kn.stats().processes_created); });
    g("slm_kernel_process_activations", "process dispatches (sim-level switches)",
      [](const sim::Kernel& kn) { return double(kn.stats().process_activations); });
    g("slm_kernel_delta_cycles", "delta cycles executed",
      [](const sim::Kernel& kn) { return double(kn.stats().delta_cycles); });
    g("slm_kernel_time_advances", "timed-wheel advances",
      [](const sim::Kernel& kn) { return double(kn.stats().time_advances); });
    g("slm_kernel_events_notified", "event notifications delivered",
      [](const sim::Kernel& kn) { return double(kn.stats().events_notified); });
    g("slm_kernel_stack_bytes_in_use", "live coroutine stack bytes",
      [](const sim::Kernel& kn) { return double(kn.stats().stack_bytes_in_use); });
    g("slm_kernel_stacks_recycled", "spawns served from the stack pool free list",
      [](const sim::Kernel& kn) { return double(kn.stats().stacks_recycled); });
    g("slm_kernel_now_ns", "current simulated time (ns)",
      [](const sim::Kernel& kn) { return double(kn.now().ns()); });
    g("slm_kernel_guard_pages_disabled",
      "1 if the stack pool fell back to unguarded stacks",
      [](const sim::Kernel& kn) { return double(kn.stats().guard_pages_disabled); });
}

void register_task_stats(Registry& reg, const rtos::Task& task, Labels base) {
    Labels labels = std::move(base);
    labels.emplace_back("task", task.name());
    const rtos::Task* t = &task;
    const auto g = [&](const char* name, const char* help, auto getter) {
        reg.gauge_fn(name, help, [t, getter] { return getter(*t); }, labels);
    };
    g("slm_task_activations", "task releases/activations",
      [](const rtos::Task& tk) { return double(tk.stats().activations); });
    g("slm_task_preemptions", "times the task lost the CPU involuntarily",
      [](const rtos::Task& tk) { return double(tk.stats().preemptions); });
    g("slm_task_deadline_misses", "completions after the absolute deadline",
      [](const rtos::Task& tk) { return double(tk.stats().deadline_misses); });
    g("slm_task_completions", "completed cycles/activations",
      [](const rtos::Task& tk) { return double(tk.stats().completions); });
    g("slm_task_exec_time_ns", "accumulated modeled execution time (ns)",
      [](const rtos::Task& tk) { return double(tk.stats().exec_time.ns()); });
    g("slm_task_max_response_ns", "max release-to-completion latency (ns)",
      [](const rtos::Task& tk) { return double(tk.stats().max_response.ns()); });
    g("slm_task_total_response_ns", "sum of response times (ns)",
      [](const rtos::Task& tk) { return double(tk.stats().total_response.ns()); });
    g("slm_task_restarts", "task_restart() recoveries of this task",
      [](const rtos::Task& tk) { return double(tk.stats().restarts); });
    g("slm_task_jobs_skipped", "releases dropped by MissPolicy::SkipJob",
      [](const rtos::Task& tk) { return double(tk.stats().jobs_skipped); });
}

void register_os_stats(Registry& reg, const rtos::OsCore& os, Labels base) {
    Labels labels = std::move(base);
    labels.emplace_back("cpu", os.config().cpu_name);
    const rtos::OsCore* o = &os;
    const auto g = [&](const char* name, const char* help, auto getter) {
        reg.gauge_fn(name, help, [o, getter] { return getter(*o); }, labels);
    };
    g("slm_os_context_switches", "dispatches where the task changed",
      [](const rtos::OsCore& c) { return double(c.stats().context_switches); });
    g("slm_os_dispatches", "task dispatches",
      [](const rtos::OsCore& c) { return double(c.stats().dispatches); });
    g("slm_os_preemptions", "involuntary CPU losses",
      [](const rtos::OsCore& c) { return double(c.stats().preemptions); });
    g("slm_os_isr_entries", "ISR entries",
      [](const rtos::OsCore& c) { return double(c.stats().isr_entries); });
    g("slm_os_deadline_misses", "deadline misses across all tasks",
      [](const rtos::OsCore& c) { return double(c.stats().deadline_misses); });
    g("slm_os_syscalls", "RTOS interface invocations",
      [](const rtos::OsCore& c) { return double(c.stats().syscalls); });
    g("slm_os_lost_notifies", "event_notify calls that found no waiter",
      [](const rtos::OsCore& c) { return double(c.stats().lost_notifies); });
    g("slm_os_busy_time_ns", "sum of all tasks' modeled execution time (ns)",
      [](const rtos::OsCore& c) { return double(c.busy_time().ns()); });
    g("slm_os_crashes", "injected task crashes",
      [](const rtos::OsCore& c) { return double(c.stats().crashes); });
    g("slm_os_restarts", "task_restart() recoveries",
      [](const rtos::OsCore& c) { return double(c.stats().restarts); });
    g("slm_os_watchdog_fires", "watchdog expirations",
      [](const rtos::OsCore& c) { return double(c.stats().watchdog_fires); });
    g("slm_os_jobs_skipped", "releases dropped by MissPolicy::SkipJob",
      [](const rtos::OsCore& c) { return double(c.stats().jobs_skipped); });
    for (const rtos::Task* t : os.tasks()) {
        register_task_stats(reg, *t, labels);
    }
}

}  // namespace slm::obs
