#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace slm::obs {

/// Hot-path trace sink: fixed-width 24-byte records over an interned string
/// table. Where TraceRecorder copies three strings per record (three
/// allocations in the worst case), BinaryTraceSink resolves each string to a
/// 32-bit id — repeat names (the overwhelmingly common case in scheduling
/// traces: the same tasks, CPUs, and state names over and over) hit a
/// direct-mapped cache and cost a size check plus memcmp, no allocation.
/// bench_trace measures the record-throughput ratio (target >= 5x, enforced
/// by the committed BENCH_trace.json).
///
/// The sink is *lossless*: replay_into() re-issues every record through the
/// TraceSink interface, so converting to a TraceRecorder reproduces exactly
/// the records that a TraceRecorder in its place would have collected —
/// derived views and text exporters (CSV/VCD/Chrome) are then byte-identical
/// (pinned by tests/test_obs.cpp round-trip tests).
///
/// The binary file format (save()/load()) is documented in
/// docs/observability.md: "SLTB" magic, version, string table, then packed
/// little-endian records.
class BinaryTraceSink final : public trace::TraceSink {
public:
    /// One fixed-width record; all strings are ids into the string table.
    /// Field use per kind mirrors trace::Record: `actor` and `detail` carry
    /// the kind-specific payload (e.g. ContextSwitch: actor = incoming,
    /// detail = outgoing; ChannelOp: actor = channel, detail = op; Marker:
    /// detail = text).
    struct BinRecord {
        std::uint64_t t_ns;
        std::uint32_t kind;  ///< trace::RecordKind
        std::uint32_t cpu;
        std::uint32_t actor;
        std::uint32_t detail;
    };
    static_assert(sizeof(BinRecord) == 24);

    BinaryTraceSink();

    // ---- recording (TraceSink) ----
    void exec_begin(SimTime t, std::string_view cpu, std::string_view actor) override;
    void exec_end(SimTime t, std::string_view cpu, std::string_view actor) override;
    void task_state(SimTime t, std::string_view cpu, std::string_view actor,
                    std::string_view state) override;
    void context_switch(SimTime t, std::string_view cpu, std::string_view to,
                        std::string_view from) override;
    void irq(SimTime t, std::string_view cpu, std::string_view irq_name) override;
    void channel_op(SimTime t, std::string_view channel, std::string_view op) override;
    void marker(SimTime t, std::string_view text) override;

    void clear();

    // ---- raw access ----
    [[nodiscard]] const BinRecord& record(std::size_t i) const {
        return chunks_[i >> kChunkShift][i & kChunkMask];
    }
    [[nodiscard]] std::size_t size() const { return size_; }
    /// The interned string for `id` (asserts on out-of-range ids).
    [[nodiscard]] const std::string& str(std::uint32_t id) const;
    [[nodiscard]] std::size_t string_count() const { return strings_.size(); }

    // ---- conversion ----

    /// Re-issue every record through `out` in order. Lossless: an empty
    /// TraceRecorder fed this way ends up with exactly the records a direct
    /// recording would have produced.
    void replay_into(trace::TraceSink& out) const;

    /// Convenience: replay into a fresh TraceRecorder (derived views, text
    /// exporters).
    [[nodiscard]] trace::TraceRecorder to_recorder() const;

    // ---- binary file format ----

    /// Write the trace: magic "SLTB", version, string table, records.
    void save(std::ostream& os) const;
    /// Load a trace previously save()d, replacing this sink's contents.
    /// Returns false (leaving the sink cleared) on a malformed stream.
    [[nodiscard]] bool load(std::istream& is);

private:
    /// Records live in fixed-size chunks: appends never reallocate-and-copy
    /// (the dominant cost of a growing vector at trace sizes), and the chunk
    /// math in record() is two shifts. 64Ki records = 1.5 MiB per chunk.
    static constexpr std::size_t kChunkShift = 16;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kChunkMask = kChunkSize - 1;

    [[nodiscard]] std::uint32_t intern(std::string_view s);
    void push(SimTime t, trace::RecordKind kind, std::uint32_t cpu, std::uint32_t actor,
              std::uint32_t detail);
    void grow();

    /// Direct-mapped lookup cache in front of the intern map, indexed by a
    /// hash of the string_view's pointer. Callers like the OS core pass views
    /// of long-lived std::strings, so the same pointer recurs on the hot
    /// path. A hit is *verified* by comparing the incoming bytes against the
    /// interned string's bytes (`data`/`size` point into strings_, whose
    /// elements are stable), so a reused pointer or a colliding slot degrades
    /// to a map lookup, never to a wrong id.
    struct CacheSlot {
        const char* data = nullptr;  ///< interned bytes (not the caller's)
        std::size_t size = 0;
        std::uint32_t id = 0;
    };
    static constexpr std::size_t kCacheSize = 256;  // power of two

    std::vector<std::unique_ptr<BinRecord[]>> chunks_;
    BinRecord* tail_ = nullptr;      ///< next write position in the last chunk
    BinRecord* tail_end_ = nullptr;  ///< end of the last chunk
    std::size_t size_ = 0;
    std::uint64_t last_t_ns_ = 0;  ///< ordering-contract check
    std::deque<std::string> strings_;  ///< stable storage; index == id
    std::unordered_map<std::string_view, std::uint32_t> ids_;
    CacheSlot cache_[kCacheSize];
};

}  // namespace slm::obs
