#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/intern.hpp"
#include "trace/trace.hpp"

namespace slm::obs {

/// Hot-path trace sink: fixed-width 24-byte records over an interned string
/// table (obs::StringTable + obs::RecordLog, the machinery shared with
/// SpanRecorder). Where TraceRecorder copies three strings per record (three
/// allocations in the worst case), BinaryTraceSink resolves each string to a
/// 32-bit id — repeat names (the overwhelmingly common case in scheduling
/// traces: the same tasks, CPUs, and state names over and over) hit a
/// direct-mapped cache and cost a size check plus memcmp, no allocation.
/// bench_trace measures the record-throughput ratio (target >= 5x, enforced
/// by the committed BENCH_trace.json).
///
/// The sink is *lossless*: replay_into() re-issues every record through the
/// TraceSink interface, so converting to a TraceRecorder reproduces exactly
/// the records that a TraceRecorder in its place would have collected —
/// derived views and text exporters (CSV/VCD/Chrome) are then byte-identical
/// (pinned by tests/test_obs.cpp round-trip tests). write_chrome_trace()
/// additionally exports Chrome trace-event JSON *directly* from the binary
/// records — byte-identical to to_recorder().write_chrome_trace() without
/// materializing a TraceRecorder first.
///
/// The binary file format (save()/load()) is documented in
/// docs/observability.md: "SLTB" magic, version, string table, then packed
/// little-endian records.
class BinaryTraceSink final : public trace::TraceSink {
public:
    /// One fixed-width record; all strings are ids into the string table.
    /// Field use per kind mirrors trace::Record: `actor` and `detail` carry
    /// the kind-specific payload (e.g. ContextSwitch: actor = incoming,
    /// detail = outgoing; ChannelOp: actor = channel, detail = op; Marker:
    /// detail = text).
    struct BinRecord {
        std::uint64_t t_ns;
        std::uint32_t kind;  ///< trace::RecordKind
        std::uint32_t cpu;
        std::uint32_t actor;
        std::uint32_t detail;
    };
    static_assert(sizeof(BinRecord) == 24);

    BinaryTraceSink() = default;

    // ---- recording (TraceSink) ----
    void exec_begin(SimTime t, std::string_view cpu, std::string_view actor) override;
    void exec_end(SimTime t, std::string_view cpu, std::string_view actor) override;
    void task_state(SimTime t, std::string_view cpu, std::string_view actor,
                    std::string_view state) override;
    void context_switch(SimTime t, std::string_view cpu, std::string_view to,
                        std::string_view from) override;
    void irq(SimTime t, std::string_view cpu, std::string_view irq_name) override;
    void channel_op(SimTime t, std::string_view channel, std::string_view op) override;
    void marker(SimTime t, std::string_view text) override;

    void clear();

    // ---- raw access ----
    [[nodiscard]] const BinRecord& record(std::size_t i) const { return records_[i]; }
    [[nodiscard]] std::size_t size() const { return records_.size(); }
    /// The interned string for `id` (asserts on out-of-range ids).
    [[nodiscard]] const std::string& str(std::uint32_t id) const {
        return strings_.str(id);
    }
    [[nodiscard]] std::size_t string_count() const { return strings_.count(); }

    // ---- conversion ----

    /// Re-issue every record through `out` in order. Lossless: an empty
    /// TraceRecorder fed this way ends up with exactly the records a direct
    /// recording would have produced.
    void replay_into(trace::TraceSink& out) const;

    /// Convenience: replay into a fresh TraceRecorder (derived views, text
    /// exporters).
    [[nodiscard]] trace::TraceRecorder to_recorder() const;

    /// Chrome trace-event JSON straight from the binary records (per-actor
    /// thread rows, X slices from Running intervals, IRQ instants), sharing
    /// trace::json_escape. Byte-identical to to_recorder().write_chrome_trace()
    /// — pinned by tests/test_obs.cpp — but without the string-materializing
    /// detour through TraceRecorder.
    void write_chrome_trace(std::ostream& os) const;

    // ---- binary file format ----

    /// Write the trace: magic "SLTB", version, string table, records.
    void save(std::ostream& os) const;
    /// Load a trace previously save()d, replacing this sink's contents.
    /// Returns false (leaving the sink cleared) on a malformed stream.
    [[nodiscard]] bool load(std::istream& is);

private:
    void push(SimTime t, trace::RecordKind kind, std::uint32_t cpu, std::uint32_t actor,
              std::uint32_t detail);

    /// Records live in fixed-size chunks (RecordLog): appends never
    /// reallocate-and-copy. 64Ki records = 1.5 MiB per chunk.
    RecordLog<BinRecord> records_;
    StringTable strings_;
    std::uint64_t last_t_ns_ = 0;  ///< ordering-contract check
};

}  // namespace slm::obs
