#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/assert.hpp"
#include "trace/trace.hpp"

namespace slm::obs {

namespace {

constexpr const char* kSpanKindNames[kSpanKindCount] = {
    "task_run", "task_ready", "task_preempt", "task_block", "task_idle", "job",
    "recv",     "send",       "bus_xfer",     "isr",        "channel_op", "latency",
};

constexpr const char* kPathCategoryNames[kPathCategoryCount] = {
    "compute", "bus", "ready", "preempt", "block", "deliver", "dst_busy", "env", "other",
};

}  // namespace

const char* to_string(SpanKind k) {
    const auto i = static_cast<std::uint32_t>(k);
    SLM_ASSERT(i < kSpanKindCount, "bad SpanKind");
    return kSpanKindNames[i];
}

const char* to_string(PathCategory c) {
    const auto i = static_cast<std::uint32_t>(c);
    SLM_ASSERT(i < kPathCategoryCount, "bad PathCategory");
    return kPathCategoryNames[i];
}

// ---- SpanRecorder ----

std::uint64_t SpanRecorder::begin_span(SimTime t, SpanKind kind, std::string_view pe,
                                       std::string_view name, std::string_view aux,
                                       TokenRef token, std::uint64_t parent) {
    // No global begin-order assertion: after-the-fact emitters (BusLink's
    // post hook) legitimately open spans that began earlier than already-
    // recorded ones. end_span checks end >= begin per span instead.
    const std::size_t idx = records_.append(SpanRec{
        t.ns(), kOpenEnd, token.id, token.valid() ? token.born_ns : 0, parent, 0,
        static_cast<std::uint32_t>(kind), strings_.intern(pe), strings_.intern(name),
        strings_.intern(aux)});
    ++open_;
    return static_cast<std::uint64_t>(idx) + 1;
}

SpanRecorder::SpanRec& SpanRecorder::rec_of(std::uint64_t id) {
    SLM_ASSERT(id >= 1 && id <= records_.size(), "span id out of range");
    return records_.at(static_cast<std::size_t>(id - 1));
}

void SpanRecorder::end_span(std::uint64_t id, SimTime t) {
    SpanRec& r = rec_of(id);
    SLM_ASSERT(r.t_end_ns == kOpenEnd, "span already ended");
    SLM_ASSERT(t.ns() >= r.t_begin_ns, "span must end at or after its begin");
    r.t_end_ns = t.ns();
    SLM_ASSERT(open_ > 0, "open-span accounting underflow");
    --open_;
}

void SpanRecorder::set_token(std::uint64_t id, TokenRef token) {
    SpanRec& r = rec_of(id);
    r.token_id = token.id;
    r.token_born_ns = token.valid() ? token.born_ns : 0;
}

void SpanRecorder::set_value(std::uint64_t id, std::uint64_t value) {
    rec_of(id).value = value;
}

void SpanRecorder::reclassify(std::uint64_t id, SpanKind kind) {
    rec_of(id).kind = static_cast<std::uint32_t>(kind);
}

void SpanRecorder::clear() {
    records_.clear();
    strings_.clear();
    open_ = 0;
}

// ---- SpanTracer ----

SpanTracer::SpanTracer(rtos::OsCore& core, SpanSink& sink) : core_(&core), sink_(sink) {
    core.add_observer(this);
}

SpanTracer::~SpanTracer() {
    if (core_ != nullptr) {
        core_->remove_observer(this);
    }
}

void SpanTracer::on_task_state(const rtos::Task& t, rtos::TaskState /*from*/,
                               rtos::TaskState to, SimTime now) {
    if (const auto it = open_.find(&t); it != open_.end()) {
        sink_.end_span(it->second, now);
        open_.erase(it);
    }
    SpanKind kind;
    switch (to) {
        case rtos::TaskState::Running:
            kind = SpanKind::TaskRun;
            break;
        case rtos::TaskState::Ready:
            kind = SpanKind::TaskReady;
            break;
        case rtos::TaskState::WaitingEvent:
            kind = SpanKind::TaskBlock;
            break;
        case rtos::TaskState::WaitingPeriod:
        case rtos::TaskState::Sleeping:
        case rtos::TaskState::Suspended:
        case rtos::TaskState::ParWait:
            kind = SpanKind::TaskIdle;
            break;
        case rtos::TaskState::New:
        case rtos::TaskState::Terminated:
        default:
            return;  // no open span for dormant states
    }
    SLM_ASSERT(core_ != nullptr, "SpanTracer used after core teardown");
    open_[&t] = sink_.begin_span(now, kind, core_->config().cpu_name, t.name());
}

void SpanTracer::on_preempt(const rtos::Task& preempted, const rtos::Task& /*by*/,
                            SimTime /*now*/) {
    // The core moves the victim to Ready *before* reporting the preemption
    // (rtos/core.cpp maybe_yield), so the span just opened as TaskReady is
    // retro-labeled: involuntary wait is its own critical-path category.
    if (const auto it = open_.find(&preempted); it != open_.end()) {
        sink_.reclassify(it->second, SpanKind::TaskPreempt);
    }
}

void SpanTracer::on_isr(const std::string& irq_name, SimTime now) {
    SLM_ASSERT(core_ != nullptr, "SpanTracer used after core teardown");
    sink_.instant(now, SpanKind::Isr, core_->config().cpu_name, irq_name);
}

void SpanTracer::on_channel_op(const std::string& channel, const char* op, SimTime now) {
    SLM_ASSERT(core_ != nullptr, "SpanTracer used after core teardown");
    sink_.instant(now, SpanKind::ChannelOp, core_->config().cpu_name, channel, op);
}

void SpanTracer::on_core_teardown() {
    if (core_ == nullptr) {
        return;
    }
    const SimTime now = core_->kernel().now();
    for (const auto& [task, id] : open_) {
        sink_.end_span(id, now);
    }
    open_.clear();
    core_ = nullptr;
}

// ---- critical-path extraction ----

namespace {

/// Key for "this PE, this task/actor" over interned ids. Safe within one
/// recorder: intern() dedupes, so equal strings share one id.
std::uint64_t actor_key(std::uint32_t pe, std::uint32_t name) {
    return (static_cast<std::uint64_t>(pe) << 32) | name;
}

struct StateSpan {
    std::uint64_t begin;
    std::uint64_t end;  ///< clipped: open spans read as "until forever"
    SpanKind kind;
};

struct Hop {
    std::uint64_t end;
    std::size_t idx;  ///< record index (span fields + final tie-break)
    bool is_send;
};

/// Pre-indexed view of one recorder, built once per extraction.
struct SpanIndex {
    const SpanRecorder& rec;
    // Task-state timeline per (pe, task), in begin order (emission order is
    // begin order per task: the tracer closes one state before opening the
    // next).
    std::map<std::uint64_t, std::vector<StateSpan>> states;
    // Send/Recv spans per token (id, born), in end order.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<Hop>> hops;

    explicit SpanIndex(const SpanRecorder& r) : rec(r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            const SpanRecorder::SpanRec& s = r.rec(i);
            const auto kind = static_cast<SpanKind>(s.kind);
            switch (kind) {
                case SpanKind::TaskRun:
                case SpanKind::TaskReady:
                case SpanKind::TaskPreempt:
                case SpanKind::TaskBlock:
                case SpanKind::TaskIdle:
                    states[actor_key(s.pe, s.name)].push_back(StateSpan{
                        s.t_begin_ns,
                        s.t_end_ns == SpanRecorder::kOpenEnd ? ~std::uint64_t{0}
                                                             : s.t_end_ns,
                        kind});
                    break;
                case SpanKind::Send:
                case SpanKind::Recv:
                    if (s.token_id != kNoTokenId &&
                        s.t_end_ns != SpanRecorder::kOpenEnd) {
                        hops[{s.token_id, s.token_born_ns}].push_back(
                            Hop{s.t_end_ns, i, kind == SpanKind::Send});
                    }
                    break;
                default:
                    break;
            }
        }
        for (auto& [token, v] : hops) {
            // Causal order: by end time; at a tie, the Send of a matched pair
            // completes before its Recv (a queue hand-off can wake the
            // receiver in the same nanosecond), so Sends sort first.
            std::sort(v.begin(), v.end(), [](const Hop& a, const Hop& b) {
                if (a.end != b.end) {
                    return a.end < b.end;
                }
                if (a.is_send != b.is_send) {
                    return a.is_send;
                }
                return a.idx < b.idx;
            });
        }
    }
};

void add_segment(CriticalPath& out, std::uint64_t b, std::uint64_t e, PathCategory cat,
                 const std::string& who) {
    if (e <= b) {
        return;
    }
    out.by_category[static_cast<std::size_t>(cat)] += e - b;
    if (!out.segments.empty()) {
        PathSegment& last = out.segments.back();
        if (last.end_ns == b && last.category == cat && last.who == who) {
            last.end_ns = e;  // coalesce
            return;
        }
    }
    out.segments.push_back(PathSegment{b, e, cat, who});
}

/// Partition [w0, w1) held by task (pe, task) along its state timeline.
/// Running time inside [bus_b, bus_e) — the enclosing Send span — is Bus
/// (occupancy + arbitration keep the sender Running: arch::Bus::occupy waits
/// on the raw kernel, invisible to the OS); Running outside is Compute.
/// An actor with no state timeline at all is the environment (a stimulus
/// process posts straight from a kernel process, no RTOS task behind it).
void partition_task_window(const SpanIndex& ix, std::uint64_t w0, std::uint64_t w1,
                           std::uint32_t pe, std::uint32_t task, std::uint64_t bus_b,
                           std::uint64_t bus_e, CriticalPath& out) {
    if (w1 <= w0) {
        return;
    }
    const std::string& who = ix.rec.str(task);
    const auto it = ix.states.find(actor_key(pe, task));
    if (it == ix.states.end() || it->second.empty()) {
        add_segment(out, w0, w1, PathCategory::Env, who);
        return;
    }
    std::uint64_t cur = w0;
    for (const StateSpan& s : it->second) {
        if (s.end <= cur) {
            continue;
        }
        if (s.begin >= w1) {
            break;
        }
        const std::uint64_t b = std::max(cur, s.begin);
        const std::uint64_t e = std::min(w1, s.end);
        if (b > cur) {
            add_segment(out, cur, b, PathCategory::Other, who);  // timeline gap
        }
        switch (s.kind) {
            case SpanKind::TaskRun: {
                // Split the Running overlap at the send-window boundary.
                const std::uint64_t bb = std::max(b, bus_b);
                const std::uint64_t be = std::min(e, bus_e);
                if (be > bb) {
                    add_segment(out, b, bb, PathCategory::Compute, who);
                    add_segment(out, bb, be, PathCategory::Bus, who);
                    add_segment(out, be, e, PathCategory::Compute, who);
                } else {
                    add_segment(out, b, e, PathCategory::Compute, who);
                }
                break;
            }
            case SpanKind::TaskReady:
                add_segment(out, b, e, PathCategory::Ready, who);
                break;
            case SpanKind::TaskPreempt:
                add_segment(out, b, e, PathCategory::Preempt, who);
                break;
            case SpanKind::TaskBlock:
                add_segment(out, b, e, PathCategory::Block, who);
                break;
            default:
                add_segment(out, b, e, PathCategory::Other, who);
                break;
        }
        cur = e;
        if (cur >= w1) {
            break;
        }
    }
    if (cur < w1) {
        add_segment(out, cur, w1, PathCategory::Other, who);
    }
}

/// Partition [w0, w1) while the token is in flight on `channel` toward the
/// receiver (pe, task): the receiver running other work is DstBusy, runnable-
/// but-unscheduled is Ready/Preempt, anything else (blocked waiting for
/// exactly this delivery, idle, no timeline) is Deliver.
void partition_channel_window(const SpanIndex& ix, std::uint64_t w0, std::uint64_t w1,
                              std::uint32_t channel, std::uint32_t pe,
                              std::uint32_t task, CriticalPath& out) {
    if (w1 <= w0) {
        return;
    }
    const std::string& who = ix.rec.str(channel);
    const auto it = ix.states.find(actor_key(pe, task));
    if (it == ix.states.end() || it->second.empty()) {
        add_segment(out, w0, w1, PathCategory::Deliver, who);
        return;
    }
    std::uint64_t cur = w0;
    for (const StateSpan& s : it->second) {
        if (s.end <= cur) {
            continue;
        }
        if (s.begin >= w1) {
            break;
        }
        const std::uint64_t b = std::max(cur, s.begin);
        const std::uint64_t e = std::min(w1, s.end);
        if (b > cur) {
            add_segment(out, cur, b, PathCategory::Deliver, who);
        }
        switch (s.kind) {
            case SpanKind::TaskRun:
                add_segment(out, b, e, PathCategory::DstBusy, who);
                break;
            case SpanKind::TaskReady:
                add_segment(out, b, e, PathCategory::Ready, who);
                break;
            case SpanKind::TaskPreempt:
                add_segment(out, b, e, PathCategory::Preempt, who);
                break;
            default:
                add_segment(out, b, e, PathCategory::Deliver, who);
                break;
        }
        cur = e;
        if (cur >= w1) {
            break;
        }
    }
    if (cur < w1) {
        add_segment(out, cur, w1, PathCategory::Deliver, who);
    }
}

CriticalPath extract_one(const SpanIndex& ix, const SpanRecorder::SpanRec& lat) {
    CriticalPath cp;
    cp.token_id = lat.token_id;
    cp.born_ns = lat.token_born_ns;
    cp.recorded_ns = lat.t_begin_ns;
    cp.total_ns = lat.value;
    cp.anchor_ns = cp.recorded_ns >= cp.total_ns ? cp.recorded_ns - cp.total_ns : 0;
    cp.sink = ix.rec.str(lat.name);
    cp.valid = true;

    // Custody chain: cut the window at the end of every token-matching Send
    // and Recv. Up to a Send's end the token is held by the sender; from a
    // Send's end to the matching Recv's end it is in flight on the channel;
    // from a Recv's end the receiver holds it — and the stretch after the
    // last hop belongs to the task that reported the sample. Hops are
    // clamped into [anchor, recorded); each partition call emits disjoint
    // contiguous segments, so the sum over categories equals the observed
    // sample exactly, in integer nanoseconds, by construction.
    std::uint64_t cur = cp.anchor_ns;
    if (lat.token_id != kNoTokenId) {
        const auto it = ix.hops.find({lat.token_id, lat.token_born_ns});
        if (it != ix.hops.end()) {
            for (const Hop& h : it->second) {
                if (h.end <= cur) {
                    continue;  // before the window (or zero-width)
                }
                if (h.end >= cp.recorded_ns) {
                    break;  // at/after the sample: sink custody from here
                }
                const SpanRecorder::SpanRec& s = ix.rec.rec(h.idx);
                if (static_cast<SpanKind>(s.kind) == SpanKind::Send) {
                    // [cur, send.end): the sender holds the token. Running
                    // time inside the send span itself is bus occupancy.
                    partition_task_window(ix, cur, h.end, s.pe, s.aux, s.t_begin_ns,
                                          s.t_end_ns, cp);
                } else {
                    // [cur, recv.end): in flight toward the receiving task.
                    partition_channel_window(ix, cur, h.end, s.name, s.pe, s.aux, cp);
                }
                cur = h.end;
                ++cp.hops;
            }
        }
    }
    // Tail window: held by the task that reported the sample.
    partition_task_window(ix, cur, cp.recorded_ns, lat.pe, lat.name, 0, 0, cp);
    return cp;
}

}  // namespace

std::uint64_t CriticalPath::category_sum() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : by_category) {
        sum += v;
    }
    return sum;
}

PathCategory CriticalPath::bottleneck() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < by_category.size(); ++i) {
        if (by_category[i] > by_category[best]) {
            best = i;
        }
    }
    return static_cast<PathCategory>(best);
}

std::vector<CriticalPath> extract_critical_paths(const SpanRecorder& rec) {
    std::vector<CriticalPath> out;
    const SpanIndex ix(rec);
    for (std::size_t i = 0; i < rec.size(); ++i) {
        const SpanRecorder::SpanRec& s = rec.rec(i);
        if (static_cast<SpanKind>(s.kind) == SpanKind::Latency) {
            out.push_back(extract_one(ix, s));
        }
    }
    return out;
}

CriticalPath worst_critical_path(const SpanRecorder& rec) {
    CriticalPath worst;
    for (CriticalPath& cp : extract_critical_paths(rec)) {
        if (!worst.valid || cp.total_ns > worst.total_ns) {
            worst = std::move(cp);
        }
    }
    return worst;
}

// ---- exporters ----

void write_span_json(std::ostream& os, const SpanRecorder& rec) {
    os << R"({"schema":"slm-span-dump-v1","spans":)" << rec.size() << "}\n";
    for (std::size_t i = 0; i < rec.size(); ++i) {
        const SpanRecorder::SpanRec& s = rec.rec(i);
        os << R"({"id":)" << (i + 1) << R"(,"kind":")"
           << to_string(static_cast<SpanKind>(s.kind)) << R"(","begin_ns":)"
           << s.t_begin_ns << R"(,"end_ns":)";
        if (s.t_end_ns == SpanRecorder::kOpenEnd) {
            os << "null";
        } else {
            os << s.t_end_ns;
        }
        os << R"(,"pe":")" << trace::json_escape(rec.str(s.pe)) << R"(","name":")"
           << trace::json_escape(rec.str(s.name)) << '"';
        if (s.aux != 0) {
            os << R"(,"aux":")" << trace::json_escape(rec.str(s.aux)) << '"';
        }
        os << R"(,"parent":)" << s.parent;
        if (s.token_id != kNoTokenId) {
            os << R"(,"token_id":)" << s.token_id << R"(,"token_born_ns":)"
               << s.token_born_ns;
        }
        os << R"(,"value":)" << s.value << "}\n";
    }
}

namespace {

std::string us_str(std::uint64_t t_ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(t_ns) / 1000.0);
    return std::string(buf);
}

}  // namespace

void write_perfetto_json(std::ostream& os, const SpanRecorder& rec) {
    os << "[";
    bool first = true;
    const auto emit = [&](const std::string& json) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "\n" << json;
    };

    // Process per PE (first appearance order; the empty PE — stimulus
    // processes — becomes "env"), plus one process per bus (BusXfer aux).
    std::vector<std::pair<std::uint32_t, int>> pe_pids;   // interned pe -> pid
    std::vector<std::pair<std::uint32_t, int>> bus_pids;  // interned bus -> pid
    int next_pid = 1;
    const auto pid_of = [&](std::vector<std::pair<std::uint32_t, int>>& tab,
                            std::uint32_t id, const char* fallback) {
        for (const auto& [k, pid] : tab) {
            if (k == id) {
                return pid;
            }
        }
        tab.emplace_back(id, next_pid);
        const std::string& name = rec.str(id);
        emit(R"({"name":"process_name","ph":"M","pid":)" + std::to_string(next_pid) +
             R"(,"args":{"name":")" +
             trace::json_escape(name.empty() ? fallback : name.c_str()) + "\"}}");
        return next_pid++;
    };
    // Thread per row (task state row, "<task>.io" row); tid 0 is the per-PE
    // IRQ row, so task tids start at 1.
    std::map<std::pair<int, std::string>, int> tids;
    std::map<int, int> next_tid;
    const auto tid_of = [&](int pid, const std::string& row) {
        const auto it = tids.find({pid, row});
        if (it != tids.end()) {
            return it->second;
        }
        int& next = next_tid[pid];
        const int tid = ++next;
        tids.emplace(std::make_pair(pid, row), tid);
        emit(R"({"name":"thread_name","ph":"M","pid":)" + std::to_string(pid) +
             R"(,"tid":)" + std::to_string(tid) + R"(,"args":{"name":")" +
             trace::json_escape(row) + "\"}}");
        return tid;
    };

    // Flow arrows: pair the i-th Send with the i-th Recv of each
    // (token, channel); arrows step "s" at the send's end and finish "f"
    // (bp "e") at the recv's end. Ids are assigned in pairing order.
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>,
             std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
        by_token_chan;
    for (std::size_t i = 0; i < rec.size(); ++i) {
        const SpanRecorder::SpanRec& s = rec.rec(i);
        if (s.token_id == kNoTokenId || s.t_end_ns == SpanRecorder::kOpenEnd) {
            continue;
        }
        const auto kind = static_cast<SpanKind>(s.kind);
        if (kind == SpanKind::Send) {
            by_token_chan[{s.token_id, s.token_born_ns, s.name}].first.push_back(i);
        } else if (kind == SpanKind::Recv) {
            by_token_chan[{s.token_id, s.token_born_ns, s.name}].second.push_back(i);
        }
    }
    std::map<std::size_t, std::pair<int, bool>> flow;  // record -> (id, is_start)
    int next_flow = 1;
    for (const auto& [key, sr] : by_token_chan) {
        const std::size_t n = std::min(sr.first.size(), sr.second.size());
        for (std::size_t i = 0; i < n; ++i) {
            flow[sr.first[i]] = {next_flow, true};
            flow[sr.second[i]] = {next_flow, false};
            ++next_flow;
        }
    }

    const auto slice = [&](int pid, int tid, const std::string& name,
                           std::uint64_t b, std::uint64_t e) {
        emit(R"({"name":")" + trace::json_escape(name) + R"(","ph":"X","pid":)" +
             std::to_string(pid) + R"(,"tid":)" + std::to_string(tid) + R"(,"ts":)" +
             us_str(b) + R"(,"dur":)" + us_str(e - b) + "}");
    };
    const auto instant = [&](int pid, int tid, const std::string& name,
                             std::uint64_t t) {
        emit(R"({"name":")" + trace::json_escape(name) + R"(","ph":"i","pid":)" +
             std::to_string(pid) + R"(,"tid":)" + std::to_string(tid) + R"(,"ts":)" +
             us_str(t) + R"(,"s":"t"})");
    };

    for (std::size_t i = 0; i < rec.size(); ++i) {
        const SpanRecorder::SpanRec& s = rec.rec(i);
        const auto kind = static_cast<SpanKind>(s.kind);
        const bool open = s.t_end_ns == SpanRecorder::kOpenEnd;
        switch (kind) {
            case SpanKind::TaskRun:
            case SpanKind::TaskReady:
            case SpanKind::TaskPreempt:
            case SpanKind::TaskBlock:
            case SpanKind::TaskIdle: {
                if (open) {
                    break;  // clipped: unfinished states are dropped
                }
                static constexpr const char* kStateNames[] = {"run", "ready", "preempt",
                                                              "block", "idle"};
                const int pid = pid_of(pe_pids, s.pe, "env");
                const int tid = tid_of(pid, rec.str(s.name));
                slice(pid, tid, kStateNames[s.kind], s.t_begin_ns, s.t_end_ns);
                break;
            }
            case SpanKind::Job:
            case SpanKind::Recv:
            case SpanKind::Send: {
                if (open) {
                    break;
                }
                const int pid = pid_of(pe_pids, s.pe, "env");
                // Send/Recv: name = channel, aux = the task doing the I/O;
                // Job: name = task.
                const std::string& task =
                    kind == SpanKind::Job ? rec.str(s.name) : rec.str(s.aux);
                const int tid = tid_of(pid, task + ".io");
                const std::string label =
                    kind == SpanKind::Job
                        ? "job"
                        : (kind == SpanKind::Recv ? "recv:" : "send:") +
                              rec.str(s.name);
                slice(pid, tid, label, s.t_begin_ns, s.t_end_ns);
                if (const auto it = flow.find(i); it != flow.end()) {
                    const auto [fid, start] = it->second;
                    emit(R"({"name":"token","cat":"token","ph":")" +
                         std::string(start ? "s" : "f") +
                         (start ? std::string() : std::string(R"(","bp":"e)")) +
                         R"(","id":)" + std::to_string(fid) + R"(,"pid":)" +
                         std::to_string(pid) + R"(,"tid":)" + std::to_string(tid) +
                         R"(,"ts":)" + us_str(s.t_end_ns) + "}");
                }
                break;
            }
            case SpanKind::BusXfer: {
                if (open) {
                    break;
                }
                const int pid = pid_of(bus_pids, s.aux, "bus");
                const int tid = tid_of(pid, rec.str(s.name));
                slice(pid, tid, "xfer", s.t_begin_ns, s.t_end_ns);
                break;
            }
            case SpanKind::Isr: {
                const int pid = pid_of(pe_pids, s.pe, "env");
                instant(pid, 0, "irq:" + rec.str(s.name), s.t_begin_ns);
                break;
            }
            case SpanKind::Latency: {
                const int pid = pid_of(pe_pids, s.pe, "env");
                const int tid = tid_of(pid, rec.str(s.name) + ".io");
                instant(pid, tid, "latency:" + std::to_string(s.value) + "ns",
                        s.t_begin_ns);
                break;
            }
            case SpanKind::ChannelOp:
                break;  // too dense to chart; the span dump keeps them
        }
    }
    os << "\n]\n";
}

void register_span_stats(Registry& reg, const SpanRecorder& rec) {
    // Snapshot semantics: plain set() with values read now, so the registry
    // may outlive the recorder.
    reg.gauge("slm_span_records", "Recorded spans").set(static_cast<double>(rec.size()));
    reg.gauge("slm_span_strings", "Interned span strings")
        .set(static_cast<double>(rec.string_count()));
    reg.gauge("slm_span_open", "Spans still open (0 after a clean teardown)")
        .set(static_cast<double>(rec.open_count()));
    std::size_t latency_records = 0;
    for (std::size_t i = 0; i < rec.size(); ++i) {
        if (static_cast<SpanKind>(rec.rec(i).kind) == SpanKind::Latency) {
            ++latency_records;
        }
    }
    reg.gauge("slm_span_latency_records", "Recorded end-to-end latency samples")
        .set(static_cast<double>(latency_records));
    const CriticalPath worst = worst_critical_path(rec);
    reg.gauge("slm_span_critical_path_total_ns",
              "Worst observed end-to-end latency (critical path total)")
        .set(worst.valid ? static_cast<double>(worst.total_ns) : 0.0);
    for (std::size_t c = 0; c < kPathCategoryCount; ++c) {
        reg.gauge("slm_span_critical_path_ns",
                  "Worst critical path, exact per-category breakdown",
                  {{"category", to_string(static_cast<PathCategory>(c))}})
            .set(worst.valid ? static_cast<double>(worst.by_category[c]) : 0.0);
    }
}

}  // namespace slm::obs
