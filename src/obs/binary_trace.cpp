#include "obs/binary_trace.hpp"

#include <istream>
#include <ostream>

#include "sim/assert.hpp"

namespace slm::obs {

namespace {

constexpr std::uint32_t kMagic = 0x534C5442;  // "SLTB"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMaxKind = static_cast<std::uint32_t>(trace::RecordKind::Marker);

// Sanity caps for load(): a corrupted length field must not turn into a
// multi-gigabyte allocation before the stream read fails. Real traces stay
// far below both (strings are task/cpu/irq names and short markers).
constexpr std::uint32_t kMaxStringLen = 1u << 20;   // 1 MiB per interned string
constexpr std::uint32_t kMaxStrings = 1u << 24;     // 16M distinct strings


void put_u32(std::ostream& os, std::uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) {
        b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    os.write(b, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) {
        b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    os.write(b, 8);
}

bool get_u32(std::istream& is, std::uint32_t& v) {
    char b[4];
    if (!is.read(b, 4)) {
        return false;
    }
    v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
    }
    return true;
}

bool get_u64(std::istream& is, std::uint64_t& v) {
    char b[8];
    if (!is.read(b, 8)) {
        return false;
    }
    v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
    }
    return true;
}

}  // namespace

BinaryTraceSink::BinaryTraceSink() {
    strings_.emplace_back();  // id 0 is always the empty string
    ids_.emplace(std::string_view{strings_.back()}, 0);
}

std::uint32_t BinaryTraceSink::intern(std::string_view s) {
    if (s.empty()) {
        return 0;
    }
    auto h = reinterpret_cast<std::uintptr_t>(s.data());
    h ^= (h >> 4) ^ (h >> 11);
    CacheSlot& slot = cache_[h & (kCacheSize - 1)];
    // Verify by content, not by pointer: the slot only *suggests* an id.
    if (slot.size == s.size() && slot.data != nullptr &&
        std::memcmp(slot.data, s.data(), s.size()) == 0) {
        return slot.id;
    }
    std::uint32_t id;
    if (const auto it = ids_.find(s); it != ids_.end()) {
        id = it->second;
    } else {
        id = static_cast<std::uint32_t>(strings_.size());
        strings_.emplace_back(s);  // deque: stable storage for the map's keys
        ids_.emplace(std::string_view{strings_.back()}, id);
    }
    slot = CacheSlot{strings_[id].data(), s.size(), id};
    return id;
}

void BinaryTraceSink::grow() {
    // for_overwrite: skip zero-initialization — every slot is written before
    // it is ever read (size_ gates all reads).
    chunks_.push_back(std::make_unique_for_overwrite<BinRecord[]>(kChunkSize));
    tail_ = chunks_.back().get();
    tail_end_ = tail_ + kChunkSize;
}

void BinaryTraceSink::push(SimTime t, trace::RecordKind kind, std::uint32_t cpu,
                           std::uint32_t actor, std::uint32_t detail) {
    SLM_ASSERT(t.ns() >= last_t_ns_,
               "trace records must arrive in nondecreasing time order");
    last_t_ns_ = t.ns();
    if (tail_ == tail_end_) {
        grow();
    }
    *tail_++ = BinRecord{t.ns(), static_cast<std::uint32_t>(kind), cpu, actor, detail};
    ++size_;
}

void BinaryTraceSink::exec_begin(SimTime t, std::string_view cpu, std::string_view actor) {
    push(t, trace::RecordKind::ExecBegin, intern(cpu), intern(actor), 0);
}

void BinaryTraceSink::exec_end(SimTime t, std::string_view cpu, std::string_view actor) {
    push(t, trace::RecordKind::ExecEnd, intern(cpu), intern(actor), 0);
}

void BinaryTraceSink::task_state(SimTime t, std::string_view cpu, std::string_view actor,
                                 std::string_view state) {
    push(t, trace::RecordKind::TaskState, intern(cpu), intern(actor), intern(state));
}

void BinaryTraceSink::context_switch(SimTime t, std::string_view cpu, std::string_view to,
                                     std::string_view from) {
    push(t, trace::RecordKind::ContextSwitch, intern(cpu), intern(to), intern(from));
}

void BinaryTraceSink::irq(SimTime t, std::string_view cpu, std::string_view irq_name) {
    push(t, trace::RecordKind::Irq, intern(cpu), intern(irq_name), 0);
}

void BinaryTraceSink::channel_op(SimTime t, std::string_view channel, std::string_view op) {
    // Mirrors trace::Record for ChannelOp: cpu empty, actor = channel,
    // detail = op (so replay reproduces a direct recording byte-for-byte).
    push(t, trace::RecordKind::ChannelOp, 0, intern(channel), intern(op));
}

void BinaryTraceSink::marker(SimTime t, std::string_view text) {
    push(t, trace::RecordKind::Marker, 0, 0, intern(text));
}

void BinaryTraceSink::clear() {
    chunks_.clear();
    tail_ = tail_end_ = nullptr;
    size_ = 0;
    last_t_ns_ = 0;
    strings_.clear();
    ids_.clear();
    for (CacheSlot& s : cache_) {
        s = CacheSlot{};
    }
    strings_.emplace_back();
    ids_.emplace(std::string_view{strings_.back()}, 0);
}

const std::string& BinaryTraceSink::str(std::uint32_t id) const {
    SLM_ASSERT(id < strings_.size(), "string id out of range");
    return strings_[id];
}

void BinaryTraceSink::replay_into(trace::TraceSink& out) const {
    for (std::size_t i = 0; i < size_; ++i) {
        const BinRecord& r = record(i);
        const SimTime t = nanoseconds(r.t_ns);
        switch (static_cast<trace::RecordKind>(r.kind)) {
            case trace::RecordKind::TaskState:
                out.task_state(t, str(r.cpu), str(r.actor), str(r.detail));
                break;
            case trace::RecordKind::ContextSwitch:
                out.context_switch(t, str(r.cpu), str(r.actor), str(r.detail));
                break;
            case trace::RecordKind::Irq:
                out.irq(t, str(r.cpu), str(r.actor));
                break;
            case trace::RecordKind::ExecBegin:
                out.exec_begin(t, str(r.cpu), str(r.actor));
                break;
            case trace::RecordKind::ExecEnd:
                out.exec_end(t, str(r.cpu), str(r.actor));
                break;
            case trace::RecordKind::ChannelOp:
                out.channel_op(t, str(r.actor), str(r.detail));
                break;
            case trace::RecordKind::Marker:
                out.marker(t, str(r.detail));
                break;
        }
    }
}

trace::TraceRecorder BinaryTraceSink::to_recorder() const {
    trace::TraceRecorder rec;
    replay_into(rec);
    return rec;
}

void BinaryTraceSink::save(std::ostream& os) const {
    put_u32(os, kMagic);
    put_u32(os, kVersion);
    put_u32(os, static_cast<std::uint32_t>(strings_.size()));
    for (const std::string& s : strings_) {
        put_u32(os, static_cast<std::uint32_t>(s.size()));
        os.write(s.data(), static_cast<std::streamsize>(s.size()));
    }
    put_u64(os, size_);
    for (std::size_t i = 0; i < size_; ++i) {
        const BinRecord& r = record(i);
        put_u64(os, r.t_ns);
        put_u32(os, r.kind);
        put_u32(os, r.cpu);
        put_u32(os, r.actor);
        put_u32(os, r.detail);
    }
}

bool BinaryTraceSink::load(std::istream& is) {
    clear();
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint32_t nstrings = 0;
    if (!get_u32(is, magic) || magic != kMagic || !get_u32(is, version) ||
        version != kVersion || !get_u32(is, nstrings) || nstrings == 0 ||
        nstrings > kMaxStrings) {
        clear();
        return false;
    }
    // Slot 0 was re-created by clear(); the stream's slot 0 must be "".
    for (std::uint32_t i = 0; i < nstrings; ++i) {
        std::uint32_t len = 0;
        if (!get_u32(is, len) || len > kMaxStringLen) {
            clear();
            return false;
        }
        std::string s(len, '\0');
        if (len > 0 && !is.read(s.data(), static_cast<std::streamsize>(len))) {
            clear();
            return false;
        }
        if (i == 0) {
            if (!s.empty()) {
                clear();
                return false;
            }
            continue;
        }
        strings_.push_back(std::move(s));
        ids_.emplace(std::string_view{strings_.back()},
                     static_cast<std::uint32_t>(strings_.size() - 1));
    }
    std::uint64_t nrecords = 0;
    if (!get_u64(is, nrecords)) {
        clear();
        return false;
    }
    for (std::uint64_t i = 0; i < nrecords; ++i) {
        BinRecord r{};
        if (!get_u64(is, r.t_ns) || !get_u32(is, r.kind) || !get_u32(is, r.cpu) ||
            !get_u32(is, r.actor) || !get_u32(is, r.detail) || r.kind > kMaxKind ||
            r.cpu >= strings_.size() || r.actor >= strings_.size() ||
            r.detail >= strings_.size() || r.t_ns < last_t_ns_) {
            clear();
            return false;
        }
        last_t_ns_ = r.t_ns;
        if (tail_ == tail_end_) {
            grow();
        }
        *tail_++ = r;
        ++size_;
    }
    return true;
}

}  // namespace slm::obs
