#include "obs/binary_trace.hpp"

#include <cstdio>
#include <istream>
#include <ostream>

#include "sim/assert.hpp"

namespace slm::obs {

namespace {

constexpr std::uint32_t kMagic = 0x534C5442;  // "SLTB"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMaxKind = static_cast<std::uint32_t>(trace::RecordKind::Marker);

// Sanity caps for load(): a corrupted length field must not turn into a
// multi-gigabyte allocation before the stream read fails. Real traces stay
// far below both (strings are task/cpu/irq names and short markers).
constexpr std::uint32_t kMaxStringLen = 1u << 20;   // 1 MiB per interned string
constexpr std::uint32_t kMaxStrings = 1u << 24;     // 16M distinct strings


void put_u32(std::ostream& os, std::uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) {
        b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    os.write(b, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) {
        b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    os.write(b, 8);
}

bool get_u32(std::istream& is, std::uint32_t& v) {
    char b[4];
    if (!is.read(b, 4)) {
        return false;
    }
    v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i])) << (8 * i);
    }
    return true;
}

bool get_u64(std::istream& is, std::uint64_t& v) {
    char b[8];
    if (!is.read(b, 8)) {
        return false;
    }
    v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i])) << (8 * i);
    }
    return true;
}

}  // namespace

void BinaryTraceSink::push(SimTime t, trace::RecordKind kind, std::uint32_t cpu,
                           std::uint32_t actor, std::uint32_t detail) {
    SLM_ASSERT(t.ns() >= last_t_ns_,
               "trace records must arrive in nondecreasing time order");
    last_t_ns_ = t.ns();
    records_.append(
        BinRecord{t.ns(), static_cast<std::uint32_t>(kind), cpu, actor, detail});
}

void BinaryTraceSink::exec_begin(SimTime t, std::string_view cpu, std::string_view actor) {
    push(t, trace::RecordKind::ExecBegin, strings_.intern(cpu), strings_.intern(actor), 0);
}

void BinaryTraceSink::exec_end(SimTime t, std::string_view cpu, std::string_view actor) {
    push(t, trace::RecordKind::ExecEnd, strings_.intern(cpu), strings_.intern(actor), 0);
}

void BinaryTraceSink::task_state(SimTime t, std::string_view cpu, std::string_view actor,
                                 std::string_view state) {
    push(t, trace::RecordKind::TaskState, strings_.intern(cpu), strings_.intern(actor),
         strings_.intern(state));
}

void BinaryTraceSink::context_switch(SimTime t, std::string_view cpu, std::string_view to,
                                     std::string_view from) {
    push(t, trace::RecordKind::ContextSwitch, strings_.intern(cpu), strings_.intern(to),
         strings_.intern(from));
}

void BinaryTraceSink::irq(SimTime t, std::string_view cpu, std::string_view irq_name) {
    push(t, trace::RecordKind::Irq, strings_.intern(cpu), strings_.intern(irq_name), 0);
}

void BinaryTraceSink::channel_op(SimTime t, std::string_view channel, std::string_view op) {
    // Mirrors trace::Record for ChannelOp: cpu empty, actor = channel,
    // detail = op (so replay reproduces a direct recording byte-for-byte).
    push(t, trace::RecordKind::ChannelOp, 0, strings_.intern(channel),
         strings_.intern(op));
}

void BinaryTraceSink::marker(SimTime t, std::string_view text) {
    push(t, trace::RecordKind::Marker, 0, 0, strings_.intern(text));
}

void BinaryTraceSink::clear() {
    records_.clear();
    strings_.clear();
    last_t_ns_ = 0;
}

void BinaryTraceSink::replay_into(trace::TraceSink& out) const {
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const BinRecord& r = records_[i];
        const SimTime t = nanoseconds(r.t_ns);
        switch (static_cast<trace::RecordKind>(r.kind)) {
            case trace::RecordKind::TaskState:
                out.task_state(t, str(r.cpu), str(r.actor), str(r.detail));
                break;
            case trace::RecordKind::ContextSwitch:
                out.context_switch(t, str(r.cpu), str(r.actor), str(r.detail));
                break;
            case trace::RecordKind::Irq:
                out.irq(t, str(r.cpu), str(r.actor));
                break;
            case trace::RecordKind::ExecBegin:
                out.exec_begin(t, str(r.cpu), str(r.actor));
                break;
            case trace::RecordKind::ExecEnd:
                out.exec_end(t, str(r.cpu), str(r.actor));
                break;
            case trace::RecordKind::ChannelOp:
                out.channel_op(t, str(r.actor), str(r.detail));
                break;
            case trace::RecordKind::Marker:
                out.marker(t, str(r.detail));
                break;
        }
    }
}

trace::TraceRecorder BinaryTraceSink::to_recorder() const {
    trace::TraceRecorder rec;
    replay_into(rec);
    return rec;
}

void BinaryTraceSink::write_chrome_trace(std::ostream& os) const {
    // Mirrors TraceRecorder::write_chrome_trace exactly (same event order,
    // same fixed-point rendering) so the two export paths stay byte-identical
    // — the equivalence is pinned by tests/test_obs.cpp.
    os << "[";
    bool first = true;
    const auto emit = [&](const std::string& json) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "\n" << json;
    };
    const auto us = [](std::uint64_t t_ns) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(t_ns) / 1000.0);
        return std::string(buf);
    };
    constexpr auto kExecBegin = static_cast<std::uint32_t>(trace::RecordKind::ExecBegin);
    constexpr auto kExecEnd = static_cast<std::uint32_t>(trace::RecordKind::ExecEnd);
    constexpr auto kTaskState = static_cast<std::uint32_t>(trace::RecordKind::TaskState);
    constexpr auto kIrq = static_cast<std::uint32_t>(trace::RecordKind::Irq);

    // Actors in first-appearance order, deduplicated by *value* (a loaded
    // stream's table may alias one name under several ids).
    std::vector<std::uint32_t> actor_ids;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const BinRecord& r = records_[i];
        if (r.kind != kExecBegin && r.kind != kExecEnd && r.kind != kTaskState) {
            continue;
        }
        const std::string& a = str(r.actor);
        bool seen = false;
        for (const std::uint32_t id : actor_ids) {
            if (str(id) == a) {
                seen = true;
                break;
            }
        }
        if (!seen) {
            actor_ids.push_back(r.actor);
        }
    }

    int tid = 1;
    for (const std::uint32_t id : actor_ids) {
        const std::string& a = str(id);
        const std::string name = trace::json_escape(a);
        emit(R"({"name":"thread_name","ph":"M","pid":1,"tid":)" + std::to_string(tid) +
             R"(,"args":{"name":")" + name + "\"}}");
        const auto emit_interval = [&](std::uint64_t begin, std::uint64_t end) {
            emit(R"({"name":")" + name + R"(","ph":"X","pid":1,"tid":)" +
                 std::to_string(tid) + R"(,"ts":)" + us(begin) + R"(,"dur":)" +
                 us(end - begin) + "}");
        };
        bool open = false;
        std::uint64_t begin = 0;
        for (std::size_t i = 0; i < records_.size(); ++i) {
            const BinRecord& r = records_[i];
            const bool mine = (r.kind == kExecBegin || r.kind == kExecEnd ||
                               r.kind == kTaskState) &&
                              str(r.actor) == a;
            if (!mine) {
                continue;
            }
            const bool running =
                r.kind == kExecBegin || (r.kind == kTaskState && str(r.detail) == "Running");
            if (!open && running) {
                open = true;
                begin = r.t_ns;
            } else if (open && !running) {
                open = false;
                if (r.t_ns > begin) {
                    emit_interval(begin, r.t_ns);
                }
            }
        }
        if (open && records_.size() > 0 &&
            records_[records_.size() - 1].t_ns > begin) {
            emit_interval(begin, records_[records_.size() - 1].t_ns);
        }
        ++tid;
    }
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const BinRecord& r = records_[i];
        if (r.kind == kIrq) {
            emit(R"({"name":"irq:)" + trace::json_escape(str(r.actor)) +
                 R"(","ph":"i","pid":1,"tid":0,"ts":)" + us(r.t_ns) + R"(,"s":"g"})");
        }
    }
    os << "\n]\n";
}

void BinaryTraceSink::save(std::ostream& os) const {
    put_u32(os, kMagic);
    put_u32(os, kVersion);
    put_u32(os, static_cast<std::uint32_t>(strings_.count()));
    for (std::uint32_t i = 0; i < strings_.count(); ++i) {
        const std::string& s = strings_.str(i);
        put_u32(os, static_cast<std::uint32_t>(s.size()));
        os.write(s.data(), static_cast<std::streamsize>(s.size()));
    }
    put_u64(os, records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const BinRecord& r = records_[i];
        put_u64(os, r.t_ns);
        put_u32(os, r.kind);
        put_u32(os, r.cpu);
        put_u32(os, r.actor);
        put_u32(os, r.detail);
    }
}

bool BinaryTraceSink::load(std::istream& is) {
    clear();
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint32_t nstrings = 0;
    if (!get_u32(is, magic) || magic != kMagic || !get_u32(is, version) ||
        version != kVersion || !get_u32(is, nstrings) || nstrings == 0 ||
        nstrings > kMaxStrings) {
        clear();
        return false;
    }
    // Slot 0 was re-created by clear(); the stream's slot 0 must be "".
    for (std::uint32_t i = 0; i < nstrings; ++i) {
        std::uint32_t len = 0;
        if (!get_u32(is, len) || len > kMaxStringLen) {
            clear();
            return false;
        }
        std::string s(len, '\0');
        if (len > 0 && !is.read(s.data(), static_cast<std::streamsize>(len))) {
            clear();
            return false;
        }
        if (i == 0) {
            if (!s.empty()) {
                clear();
                return false;
            }
            continue;
        }
        strings_.push_raw(std::move(s));
    }
    std::uint64_t nrecords = 0;
    if (!get_u64(is, nrecords)) {
        clear();
        return false;
    }
    for (std::uint64_t i = 0; i < nrecords; ++i) {
        BinRecord r{};
        if (!get_u64(is, r.t_ns) || !get_u32(is, r.kind) || !get_u32(is, r.cpu) ||
            !get_u32(is, r.actor) || !get_u32(is, r.detail) || r.kind > kMaxKind ||
            r.cpu >= strings_.count() || r.actor >= strings_.count() ||
            r.detail >= strings_.count() || r.t_ns < last_t_ns_) {
            clear();
            return false;
        }
        last_t_ns_ = r.t_ns;
        records_.append(r);
    }
    return true;
}

}  // namespace slm::obs
