#include "obs/analytics.hpp"

#include <algorithm>

namespace slm::obs {

namespace {
const char* kLatencyHelp = "scheduling latency: ready -> dispatch (ns)";
const char* kResponseHelp = "response time: release -> completion (ns)";
const char* kRecoveryHelp =
    "deadline-miss recovery latency: first missed completion -> next on-time "
    "completion (ns)";
}  // namespace

RtosAnalytics::RtosAnalytics(rtos::OsCore& os, Registry& registry)
    : os_(&os), reg_(registry) {
    cpu_labels_ = Labels{{"cpu", os.config().cpu_name}};
    switches_ = &reg_.counter("slm_os_switches_total",
                              "dispatches where the running task changed", cpu_labels_);
    dispatches_ = &reg_.counter("slm_os_dispatches_total", "task dispatches observed",
                                cpu_labels_);
    isrs_ = &reg_.counter("slm_os_isr_total", "ISR entries observed", cpu_labels_);
    inversions_ = &reg_.counter("slm_os_inversions_total",
                                "unbounded priority-inversion windows detected",
                                cpu_labels_);
    crashes_ = &reg_.counter("slm_os_crashes_total", "injected task crashes",
                             cpu_labels_);
    restarts_ = &reg_.counter("slm_os_restarts_total",
                              "task_restart() recoveries", cpu_labels_);
    watchdogs_ = &reg_.counter("slm_os_watchdog_total", "watchdog expirations",
                               cpu_labels_);
    os_->add_observer(this);
}

RtosAnalytics::~RtosAnalytics() {
    if (os_ != nullptr) {
        os_->remove_observer(this);
    }
}

void RtosAnalytics::on_core_teardown() { os_ = nullptr; }

Labels RtosAnalytics::task_labels(const rtos::Task& t) const {
    Labels labels = cpu_labels_;
    labels.emplace_back("task", t.name());
    return labels;
}

RtosAnalytics::Watch& RtosAnalytics::watch(const rtos::Task& t) {
    const auto it = watches_.find(&t);
    if (it != watches_.end()) {
        return it->second;
    }
    const Labels labels = task_labels(t);
    Watch w;
    w.latency = &reg_.histogram("slm_task_sched_latency_ns", kLatencyHelp,
                                Histogram::default_time_bounds_ns(), labels);
    w.response = &reg_.histogram("slm_task_response_ns", kResponseHelp,
                                 Histogram::default_time_bounds_ns(), labels);
    w.miss_recovery = &reg_.histogram("slm_task_miss_recovery_ns", kRecoveryHelp,
                                      Histogram::default_time_bounds_ns(), labels);
    w.blocking_ns = &reg_.counter("slm_task_blocking_ns_total",
                                  "time blocked on contended resources (ns)", labels);
    w.preempted = &reg_.counter("slm_task_preempted_total",
                                "involuntary CPU losses", labels);
    w.jobs = &reg_.counter("slm_task_jobs_total", "completed jobs", labels);
    w.missed = &reg_.counter("slm_task_missed_total",
                             "jobs completed past the deadline", labels);
    return watches_.emplace(&t, w).first->second;
}

void RtosAnalytics::on_task_state(const rtos::Task& t, rtos::TaskState /*from*/,
                                  rtos::TaskState to, SimTime now) {
    Watch& w = watch(t);
    if (to == rtos::TaskState::Ready) {
        w.ready_since = now;
        w.ready_valid = true;
        return;
    }
    if (to != rtos::TaskState::Running) {
        return;
    }
    if (w.ready_valid) {
        w.latency->observe(static_cast<double>((now - w.ready_since).ns()));
        w.ready_valid = false;
    }
    dispatches_->inc();
    if (last_running_ != &t) {
        switches_->inc();
    }
    last_running_ = &t;
    check_inversions(t, now);
}

void RtosAnalytics::on_preempt(const rtos::Task& preempted, const rtos::Task& /*by*/,
                               SimTime /*now*/) {
    watch(preempted).preempted->inc();
}

void RtosAnalytics::on_completion(const rtos::Task& t, SimTime response, bool missed,
                                  SimTime now) {
    Watch& w = watch(t);
    w.response->observe(static_cast<double>(response.ns()));
    w.jobs->inc();
    if (missed) {
        w.missed->inc();
        if (!w.miss_open) {
            w.miss_open = true;  // streak opens at the first missed job
            w.miss_since = now;
        }
    } else if (w.miss_open) {
        // First on-time job after a miss streak: the recovery latency is how
        // long the task was out of spec.
        w.miss_recovery->observe(static_cast<double>((now - w.miss_since).ns()));
        w.miss_open = false;
    }
}

void RtosAnalytics::on_isr(const std::string& /*irq_name*/, SimTime /*now*/) {
    isrs_->inc();
}

void RtosAnalytics::on_resource_block(const rtos::Task& blocked,
                                      const rtos::Task& holder,
                                      const std::string& resource, SimTime now) {
    const auto it = blocked_.find(&blocked);
    if (it != blocked_.end() && it->second.resource == resource) {
        it->second.holder = &holder;  // lock re-stolen: new holder, same wait
        return;
    }
    blocked_[&blocked] = BlockEdge{&holder, resource, now};
}

void RtosAnalytics::on_resource_acquire(const rtos::Task& t,
                                        const std::string& /*resource*/,
                                        SimTime waited, SimTime now) {
    watch(t).blocking_ns->inc(waited.ns());
    close_window(t, now);
    blocked_.erase(&t);
}

void RtosAnalytics::on_resource_release(const rtos::Task& /*t*/,
                                        const std::string& /*resource*/,
                                        SimTime /*now*/) {}

void RtosAnalytics::on_task_crash(const rtos::Task& t, SimTime /*now*/) {
    crashes_->inc();
    // The crashed incarnation's waits die with it.
    blocked_.erase(&t);
    windows_.erase(&t);
    if (last_running_ == &t) {
        last_running_ = nullptr;
    }
}

void RtosAnalytics::on_task_restart(const rtos::Task& t, SimTime /*now*/) {
    restarts_->inc();
    blocked_.erase(&t);
    windows_.erase(&t);
    Watch& w = watch(t);
    w.ready_valid = false;  // a fresh incarnation starts with clean transients
    if (last_running_ == &t) {
        last_running_ = nullptr;
    }
}

void RtosAnalytics::on_watchdog(const rtos::Task& /*t*/, SimTime /*now*/) {
    watchdogs_->inc();
}

std::vector<const rtos::Task*> RtosAnalytics::chain_of(const rtos::Task& t) const {
    std::vector<const rtos::Task*> chain;
    const rtos::Task* cur = &t;
    for (;;) {
        const auto it = blocked_.find(cur);
        if (it == blocked_.end()) {
            break;
        }
        const rtos::Task* holder = it->second.holder;
        if (std::find(chain.begin(), chain.end(), holder) != chain.end() ||
            holder == &t) {
            break;  // deadlock cycle — the chain is what we walked so far
        }
        chain.push_back(holder);
        cur = holder;
    }
    return chain;
}

void RtosAnalytics::check_inversions(const rtos::Task& running, SimTime now) {
    for (const auto& [blocked, edge] : blocked_) {
        if (blocked == &running) {
            continue;
        }
        const std::vector<const rtos::Task*> chain = chain_of(*blocked);
        const bool in_chain =
            std::find(chain.begin(), chain.end(), &running) != chain.end();
        if (in_chain) {
            // Progress: a chain member holds the CPU, the wait is bounded by
            // its critical section. Close any open window.
            close_window(*blocked, now);
            continue;
        }
        // The dispatched task does nothing toward releasing the resource. If
        // the blocked task outranks it, the blocked task is starved through
        // no chain of its own making: unbounded inversion.
        if (blocked->effective_priority() < running.effective_priority()) {
            OpenWindow& w = windows_[blocked];
            if (w.chain.empty()) {  // freshly opened
                w.start = now;
                w.intervener = running.name();
                w.holder = edge.holder->name();
                w.resource = edge.resource;
                for (const rtos::Task* c : chain) {
                    w.chain.push_back(c->name());
                }
                if (w.chain.empty()) {
                    w.chain.push_back(edge.holder->name());
                }
            }
            // Already open: the window simply extends until close_window().
        }
    }
}

void RtosAnalytics::close_window(const rtos::Task& blocked, SimTime now) {
    const auto it = windows_.find(&blocked);
    if (it == windows_.end()) {
        return;
    }
    OpenWindow& w = it->second;
    InversionFinding f;
    f.start = w.start;
    f.end = now;
    f.blocked = blocked.name();
    f.holder = w.holder;
    f.intervener = w.intervener;
    f.resource = w.resource;
    f.chain = std::move(w.chain);
    findings_.push_back(std::move(f));
    inversions_->inc();
    windows_.erase(it);
}

const Histogram* RtosAnalytics::latency_histogram(const std::string& task) const {
    Labels labels = cpu_labels_;
    labels.emplace_back("task", task);
    return reg_.find_histogram("slm_task_sched_latency_ns", labels);
}

const Histogram* RtosAnalytics::response_histogram(const std::string& task) const {
    Labels labels = cpu_labels_;
    labels.emplace_back("task", task);
    return reg_.find_histogram("slm_task_response_ns", labels);
}

}  // namespace slm::obs
