#include "sim/kernel.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <exception>

#include "sim/assert.hpp"

namespace slm::sim {

namespace {
thread_local Kernel* g_current_kernel = nullptr;
}  // namespace

Kernel& this_kernel() {
    SLM_ASSERT(g_current_kernel != nullptr,
               "this_kernel() called outside of Kernel::run()");
    return *g_current_kernel;
}

Process* this_process() {
    return g_current_kernel != nullptr ? g_current_kernel->current() : nullptr;
}

Kernel::Kernel(KernelConfig cfg)
    : cfg_(cfg),
      backend_(resolve_backend(cfg.backend)),
      stack_pool_(cfg.guard_pages) {}

Kernel::~Kernel() {
    // Stacks of processes still alive at teardown (simulation aborted early)
    // go back to the pool so its destructor frees every mapping exactly once.
    // Their suspended frames are abandoned without unwinding, as before.
    for (auto& p : processes_) {
        if (p->stack_) {
            stack_pool_.release(p->stack_);
            p->stack_ = StackBlock{};
        }
    }
}

Process* Kernel::spawn(std::string name, std::function<void()> body) {
    SLM_ASSERT(body != nullptr, "spawn() requires a process body");
    auto proc = std::unique_ptr<Process>(
        new Process(*this, std::move(name), std::move(body), current_, next_id_++));
    Process* p = proc.get();
    processes_.push_back(std::move(proc));
    // Degenerate stack_size requests (0, or below the documented floor) clamp
    // to KernelConfig::kMinStackSize; the pool then rounds to its size class.
    p->stack_ = stack_pool_.acquire(
        std::max(cfg_.stack_size, KernelConfig::kMinStackSize));
    p->ctx_.init(p->stack_.base, p->stack_.size, &Kernel::trampoline, p, backend_);
    sync_stack_stats();
    ++stats_.processes_created;
    make_ready(p);
    return p;
}

void Kernel::recycle_stack(Process* p) {
    if (p->stack_) {
        stack_pool_.release(p->stack_);
        p->stack_ = StackBlock{};
        sync_stack_stats();
    }
    p->body_ = nullptr;
}

void Kernel::sync_stack_stats() {
    stats_.stack_bytes_in_use = stack_pool_.bytes_in_use();
    stats_.stacks_recycled = stack_pool_.recycled();
    stats_.guard_pages_disabled = stack_pool_.guard_pages_disabled() ? 1 : 0;
}

void Kernel::make_ready(Process* p) {
    if (p->done()) {
        return;
    }
    set_state(p, ProcState::Ready);
    if (!p->in_runnable_) {
        runnable_.push_back(p);
        p->in_runnable_ = true;
    }
}

void Kernel::set_state(Process* p, ProcState s) {
    if (p->state_ == s) {
        return;
    }
    const ProcState from = p->state_;
    p->state_ = s;
    for (KernelObserver* obs : observers_) {
        obs->on_process_state(*p, from, s);
    }
}

void Kernel::consult_controller() {
    // Surface a DeltaOrder choice point: which of the currently runnable
    // processes executes next. candidates[0] is the FIFO front, so a
    // controller answering 0 leaves the deterministic order untouched.
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < runnable_.size(); ++i) {
        if (!runnable_[i]->done()) {
            live.push_back(i);
        }
    }
    if (live.size() < 2) {
        return;
    }
    SchedulePoint pt;
    pt.kind = SchedulePoint::Kind::DeltaOrder;
    pt.now = now_;
    pt.candidates.reserve(live.size());
    for (const std::size_t i : live) {
        pt.candidates.push_back(runnable_[i]->name());
    }
    const std::size_t choice = controller_->choose(pt);
    SLM_ASSERT(choice < live.size(),
               "ScheduleController returned an out-of-range choice");
    if (choice != 0) {
        Process* chosen = runnable_[live[choice]];
        runnable_.erase(runnable_.begin() +
                        static_cast<std::ptrdiff_t>(live[choice]));
        runnable_.push_front(chosen);
    }
}

void Kernel::drain_runnable() {
    while (!runnable_.empty()) {
        if (controller_ != nullptr) {
            consult_controller();
        }
        Process* p = runnable_.front();
        runnable_.pop_front();
        p->in_runnable_ = false;
        if (p->done()) {
            continue;
        }
        set_state(p, ProcState::Running);
        current_ = p;
        ++stats_.process_activations;
        Context::switch_to(sched_ctx_, p->ctx_, backend_);
        current_ = nullptr;
        if (p->done()) {
            recycle_stack(p);
        }
        if (abort_reason_.has_value()) {
            return;  // a SimulationAbort unwound p; stop dispatching
        }
    }
}

void Kernel::end_delta() {
    // Deliver notifications at the delta boundary (SpecC semantics): every
    // process waiting on a notified event at this point wakes, including
    // processes whose wait() ran later in the delta than the notify().
    for (Event* e : notified_events_) {
        e->notified_ = false;
        for (Process* w : e->waiters_) {
            w->waiting_on_ = nullptr;
            ++w->wake_token_;  // cancel a pending wait_timeout() deadline
            make_ready(w);
        }
        e->waiters_.clear();
    }
    notified_events_.clear();
    ++stats_.delta_cycles;
}

bool Kernel::advance_time(SimTime limit) {
    // A timed entry is live for a process sleeping in waitfor() and for a
    // process whose wait_timeout() deadline is still armed.
    const auto live = [](const TimedEntry& e) {
        return e.token == e.p->wake_token_ &&
               (e.p->state_ == ProcState::WaitingTime ||
                e.p->state_ == ProcState::WaitingEvent);
    };
    const auto fire = [this](const TimedEntry& e) {
        if (e.p->state_ == ProcState::WaitingEvent) {
            // wait_timeout() expired: leave the event's waiter list and
            // resume with the timeout flag set.
            if (e.p->waiting_on_ != nullptr) {
                std::erase(e.p->waiting_on_->waiters_, e.p);
                e.p->waiting_on_ = nullptr;
            }
            e.p->timed_out_ = true;
        }
        make_ready(e.p);
    };

    // Skim dead entries from both queues first: a cancelled timer or a
    // superseded process wakeup must not drag simulated time forward.
    while (!timed_.empty() && !live(timed_.top())) {
        timed_.pop();
    }
    while (!timer_q_.empty() &&
           timer_fns_.find(timer_q_.top().id) == timer_fns_.end()) {
        timer_q_.pop();
    }
    if (timed_.empty() && timer_q_.empty()) {
        return false;
    }
    SimTime next = SimTime::max();
    if (!timed_.empty()) {
        next = timed_.top().t;
    }
    if (!timer_q_.empty() && timer_q_.top().t < next) {
        next = timer_q_.top().t;
    }
    if (next > limit) {
        return false;
    }
    now_ = next;
    ++stats_.time_advances;
    for (KernelObserver* obs : observers_) {
        obs->on_time_advance(now_);
    }
    // One-shot timers fire before process wakeups at the same instant: they
    // model OS/interrupt machinery reacting ahead of application code. The
    // loop re-reads the top so a callback posting for the same instant still
    // runs within it.
    while (!timer_q_.empty() && timer_q_.top().t == now_) {
        const TimerEntry e = timer_q_.top();
        timer_q_.pop();
        auto it = timer_fns_.find(e.id);
        if (it == timer_fns_.end()) {
            continue;  // cancelled after the skim above (by an earlier callback)
        }
        const std::function<void()> fn = std::move(it->second);
        timer_fns_.erase(it);
        fn();
    }
    while (!timed_.empty() && timed_.top().t == now_) {
        const TimedEntry e = timed_.top();
        timed_.pop();
        if (live(e)) {
            fire(e);
        }
    }
    return true;
}

Kernel::TimerId Kernel::post_at(SimTime t, std::function<void()> fn) {
    SLM_ASSERT(fn != nullptr, "post_at() requires a callback");
    SLM_ASSERT(t >= now_, "post_at() cannot schedule into the past");
    SLM_ASSERT(t != SimTime::max(), "post_at(SimTime::max()) would never fire");
    const TimerId id = next_timer_id_++;
    timer_fns_.emplace(id, std::move(fn));
    timer_q_.push(TimerEntry{t, seq_counter_++, id});
    return id;
}

void Kernel::cancel_timer(TimerId id) {
    timer_fns_.erase(id);
}

void Kernel::run() {
    (void)run_until(SimTime::max());
}

bool Kernel::run_until(SimTime t_end) {
    SLM_ASSERT(!running_, "Kernel::run() is not reentrant");
    running_ = true;
    Kernel* const prev = g_current_kernel;
    g_current_kernel = this;
    // Restore the thread-local and the running flag even if an exception (a
    // SimulationAbort raised outside process context, e.g. from an assert
    // handler in the scheduler path) escapes the loop below.
    struct RunGuard {
        Kernel* self;
        Kernel* prev;
        ~RunGuard() {
            g_current_kernel = prev;
            self->running_ = false;
        }
    } guard{this, prev};
    sched_ctx_.adopt_thread_stack();  // ASan fiber bookkeeping; no-op otherwise

    for (;;) {
        drain_runnable();
        if (abort_reason_.has_value()) {
            return !timed_.empty() || !timer_fns_.empty();
        }
        end_delta();
        if (!runnable_.empty()) {
            continue;  // a notification at delta end made processes runnable
        }
        if (!advance_time(t_end)) {
            break;
        }
    }

    if (t_end != SimTime::max() && now_ < t_end) {
        now_ = t_end;
    }

    // Any remaining top-of-queue entries are real future activity (stale ones
    // were popped by advance_time when it last ran); a live one-shot timer is
    // pending activity too.
    return !timed_.empty() || !timer_fns_.empty();
}

std::vector<const Process*> Kernel::blocked_processes() const {
    std::vector<const Process*> out;
    for (const auto& p : processes_) {
        if (p->state_ == ProcState::WaitingEvent || p->state_ == ProcState::Joining) {
            out.push_back(p.get());
        }
    }
    return out;
}

void Kernel::check_killed() {
    if (current_ != nullptr && current_->kill_pending_) {
        throw ProcessKilled{};
    }
}

void Kernel::block_current_and_reschedule() {
    Process* self = current_;
    Context::switch_to(self->ctx_, sched_ctx_, backend_);
}

void Kernel::wait(Event& e) {
    SLM_ASSERT(current_ != nullptr, "wait() requires process context");
    check_killed();
    Process* self = current_;
    set_state(self, ProcState::WaitingEvent);
    self->waiting_on_ = &e;
    e.waiters_.push_back(self);
    block_current_and_reschedule();
    check_killed();
}

bool Kernel::wait_timeout(Event& e, SimTime dt) {
    SLM_ASSERT(current_ != nullptr, "wait_timeout() requires process context");
    SLM_ASSERT(dt != SimTime::max(), "wait_timeout() needs a finite timeout");
    check_killed();
    Process* self = current_;
    self->timed_out_ = false;
    set_state(self, ProcState::WaitingEvent);
    self->waiting_on_ = &e;
    e.waiters_.push_back(self);
    timed_.push(TimedEntry{now_ + dt, seq_counter_++, self, ++self->wake_token_});
    block_current_and_reschedule();
    check_killed();
    return !self->timed_out_;
}

void Kernel::waitfor(SimTime dt) {
    SLM_ASSERT(current_ != nullptr, "waitfor() requires process context");
    SLM_ASSERT(dt != SimTime::max(), "waitfor(SimTime::max()) would never wake");
    check_killed();
    Process* self = current_;
    set_state(self, ProcState::WaitingTime);
    timed_.push(TimedEntry{now_ + dt, seq_counter_++, self, ++self->wake_token_});
    block_current_and_reschedule();
    check_killed();
}

void Kernel::yield() {
    SLM_ASSERT(current_ != nullptr, "yield() requires process context");
    check_killed();
    Process* self = current_;
    set_state(self, ProcState::Ready);
    runnable_.push_back(self);
    self->in_runnable_ = true;
    block_current_and_reschedule();
    check_killed();
}

void Kernel::notify(Event& e) {
    if (!e.notified_) {
        e.notified_ = true;
        notified_events_.push_back(&e);
    }
    ++stats_.events_notified;
}

void Kernel::par(std::vector<Branch> branches) {
    SLM_ASSERT(current_ != nullptr, "par() requires process context");
    check_killed();
    if (branches.empty()) {
        return;
    }
    Process* self = current_;
    self->join_pending_ = static_cast<int>(branches.size());
    for (auto& b : branches) {
        spawn(std::move(b.name), std::move(b.body));
    }
    set_state(self, ProcState::Joining);
    block_current_and_reschedule();
    check_killed();
}

void Kernel::par(std::initializer_list<std::function<void()>> bodies) {
    std::vector<Branch> branches;
    branches.reserve(bodies.size());
    int i = 0;
    for (const auto& b : bodies) {
        branches.push_back(Branch{current_->name() + ".par" + std::to_string(i++), b});
    }
    par(std::move(branches));
}

void Kernel::join(Process& p) {
    SLM_ASSERT(current_ != nullptr, "join() requires process context");
    SLM_ASSERT(current_ != &p, "a process cannot join itself");
    while (!p.done()) {
        if (!p.done_evt_) {
            p.done_evt_ = std::make_unique<Event>(*this, p.name_ + ".done");
        }
        wait(*p.done_evt_);
    }
}

void Kernel::kill(Process& p) {
    if (p.done()) {
        return;
    }
    const bool was_pending = p.kill_pending_;
    p.kill_pending_ = true;
    if (&p == current_) {
        throw ProcessKilled{};
    }
    if (was_pending) {
        return;
    }
    switch (p.state_) {
        case ProcState::WaitingEvent:
            if (p.waiting_on_ != nullptr) {  // null if the event was destroyed
                std::erase(p.waiting_on_->waiters_, &p);
                p.waiting_on_ = nullptr;
            }
            make_ready(&p);
            break;
        case ProcState::WaitingTime:
            ++p.wake_token_;  // invalidate the pending timed-queue entry
            make_ready(&p);
            break;
        case ProcState::Joining:
            make_ready(&p);
            break;
        case ProcState::Created:
        case ProcState::Ready:
            // Already (or about to be) runnable; it unwinds on next dispatch.
            make_ready(&p);
            break;
        case ProcState::Running:
        case ProcState::Done:
        case ProcState::Killed:
            SLM_ASSERT(false, "unexpected state in kill()");
    }
}

void Kernel::finish_current(ProcState final_state) {
    Process* p = current_;
    set_state(p, final_state);
    if (p->done_evt_) {
        notify(*p->done_evt_);
    }
    if (p->parent_ != nullptr && p->parent_->state_ == ProcState::Joining) {
        if (--p->parent_->join_pending_ == 0) {
            make_ready(p->parent_);
        }
    }
    Context::switch_to(p->ctx_, sched_ctx_, backend_, /*finishing=*/true);
    SLM_ASSERT(false, "a finished process was resumed");
}

void Kernel::trampoline(void* raw) {
    auto* p = static_cast<Process*>(raw);
    Kernel& k = p->kernel_;
    ProcState final_state = ProcState::Done;
    if (p->kill_pending_) {
        final_state = ProcState::Killed;  // killed before it ever ran
    } else {
        try {
            p->body_();
        } catch (const ProcessKilled&) {
            final_state = ProcState::Killed;
        } catch (const SimulationAbort& a) {
            // The process asked to stop the whole simulation (typically via
            // the exploration assert handler). Record the reason; the run
            // loop stops dispatching once this process has unwound.
            k.abort_reason_ = a.reason;
            final_state = ProcState::Killed;
        } catch (const std::exception& ex) {
            std::fprintf(stderr, "slm: unhandled exception in process '%s': %s\n",
                         p->name_.c_str(), ex.what());
            std::abort();
        } catch (...) {
            std::fprintf(stderr, "slm: unhandled exception in process '%s'\n",
                         p->name_.c_str());
            std::abort();
        }
        if (p->kill_pending_) {
            final_state = ProcState::Killed;
        }
    }
    k.finish_current(final_state);
}

// ---- Process ----

const char* to_string(ProcState s) {
    switch (s) {
        case ProcState::Created: return "Created";
        case ProcState::Ready: return "Ready";
        case ProcState::Running: return "Running";
        case ProcState::WaitingEvent: return "WaitingEvent";
        case ProcState::WaitingTime: return "WaitingTime";
        case ProcState::Joining: return "Joining";
        case ProcState::Done: return "Done";
        case ProcState::Killed: return "Killed";
    }
    return "?";
}

Process::Process(Kernel& kernel, std::string name, std::function<void()> body,
                 Process* parent, int id)
    : kernel_(kernel),
      name_(std::move(name)),
      body_(std::move(body)),
      parent_(parent),
      id_(id) {}

// ---- Event ----

Event::Event(Kernel& kernel, std::string name) : kernel_(kernel), name_(std::move(name)) {}

Event::~Event() {
    // An event may be destroyed while processes still wait on it — e.g. when a
    // model is torn down after run_until() stopped the simulation early.
    // Detach the waiters: they stay blocked forever, which is the correct
    // outcome for an aborted simulation, and kill() tolerates the null link.
    for (Process* w : waiters_) {
        w->waiting_on_ = nullptr;
    }
    waiters_.clear();
    if (notified_) {
        std::erase(kernel_.notified_events_, this);
    }
}

void Event::notify() {
    kernel_.notify(*this);
}

}  // namespace slm::sim
