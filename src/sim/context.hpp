#pragma once

#include <cstddef>
#include <cstdint>
#include <ucontext.h>

// Compile-time availability of the hand-rolled assembly context switch.
// Configuring with -DSLM_FORCE_UCONTEXT=ON removes the assembly entirely and
// leaves only the portable ucontext backend; unsupported architectures fall
// back automatically. See docs/kernel-internals.md for the switch ABI.
#if !defined(SLM_FORCE_UCONTEXT) && (defined(__x86_64__) || defined(__aarch64__))
#define SLM_HAVE_FAST_CONTEXT 1
#else
#define SLM_HAVE_FAST_CONTEXT 0
#endif

namespace slm::sim {

/// Low-level coroutine switch implementation used by the kernel.
enum class ContextBackend {
    Auto,      ///< Fast when compiled in and $SLM_FORCE_UCONTEXT is unset
    Fast,      ///< fcontext-style assembly switch (no syscalls)
    Ucontext,  ///< glibc makecontext/swapcontext (2 sigprocmask syscalls/switch)
};

[[nodiscard]] const char* to_string(ContextBackend b);

/// True when the assembly switch was compiled into this build.
[[nodiscard]] bool fast_context_compiled();

/// Resolve Auto against compile-time availability and the SLM_FORCE_UCONTEXT
/// environment variable (any non-empty value other than "0" forces ucontext).
/// A Fast request on a ucontext-only build degrades to Ucontext.
[[nodiscard]] ContextBackend resolve_backend(ContextBackend requested);

/// One switchable machine context: either a coroutine (stack prepared by
/// init()) or the scheduler's borrowed thread context (switched into without
/// init). A Context is address-stable after init() — the prepared stack frame
/// and the ucontext trampoline both capture `this`.
class Context {
public:
    /// Coroutine entry point; must never return (finish by switching away).
    using Entry = void (*)(void* arg);

    Context() = default;
    /// Releases the ThreadSanitizer fiber owned by this context, if any
    /// (created by init() under -fsanitize=thread; no-op otherwise).
    ~Context();
    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    /// Prepare a fresh context that starts in `entry(arg)` on the given stack
    /// the first time it is switched to. `stack_lo` is the lowest usable byte.
    void init(void* stack_lo, std::size_t stack_size, Entry entry, void* arg,
              ContextBackend backend);

    /// For the scheduler context under sanitizers: record the current thread's
    /// stack bounds (ASan) and adopt the thread's TSan fiber handle, so
    /// fiber-switch annotations can name the context we switch back to. Safe
    /// to call repeatedly — Kernel::run_until() calls it on entry, which also
    /// keeps the bookkeeping correct when the same kernel is run from
    /// different threads at different times (the parallel engine's workers
    /// each drive their own kernels). No-op in non-sanitized builds.
    void adopt_thread_stack();

    /// Suspend `from` (the currently executing context) and resume `to`.
    /// Returns when something switches back to `from`. `finishing` must be
    /// true on a context's final switch away (its stack may be recycled; under
    /// ASan this releases the fiber's fake stack) — such a call never returns.
    static void switch_to(Context& from, Context& to, ContextBackend backend,
                          bool finishing = false);

private:
    void first_entry();
    static void fast_entry(void* raw);
    static void ucontext_entry(unsigned hi, unsigned lo);

    void* sp_ = nullptr;       ///< fast backend: saved stack pointer
    ucontext_t uctx_{};        ///< ucontext backend
    Entry entry_ = nullptr;
    void* arg_ = nullptr;
    const void* stack_lo_ = nullptr;  ///< sanitizer + diagnostics bookkeeping
    std::size_t stack_size_ = 0;
    void* asan_fake_stack_ = nullptr;
    void* tsan_fiber_ = nullptr;   ///< TSan fiber handle (owned unless adopted)
    bool tsan_fiber_owned_ = false;
};

}  // namespace slm::sim
