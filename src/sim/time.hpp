#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace slm {

/// Simulated time — an absolute instant or a duration, in integer nanoseconds.
///
/// The SLDL kernel advances logical time in discrete steps (paper §4.3: "In high
/// level system models, simulation time advances in discrete steps based on the
/// granularity of waitfor statements"). A strong type keeps simulated time from
/// being mixed up with wall-clock time or plain counters.
class SimTime {
public:
    constexpr SimTime() = default;
    constexpr explicit SimTime(std::uint64_t nanoseconds) : ns_(nanoseconds) {}

    static constexpr SimTime zero() { return SimTime{0}; }
    static constexpr SimTime max() {
        return SimTime{std::numeric_limits<std::uint64_t>::max()};
    }

    [[nodiscard]] constexpr std::uint64_t ns() const { return ns_; }
    [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
    [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
    [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

    [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }

    friend constexpr auto operator<=>(SimTime, SimTime) = default;

    /// Saturating addition: a duration past SimTime::max() clamps instead of wrapping.
    friend constexpr SimTime operator+(SimTime a, SimTime b) {
        const std::uint64_t sum = a.ns_ + b.ns_;
        return (sum < a.ns_) ? max() : SimTime{sum};
    }
    /// Clamped subtraction: never wraps below zero.
    friend constexpr SimTime operator-(SimTime a, SimTime b) {
        return (a.ns_ > b.ns_) ? SimTime{a.ns_ - b.ns_} : zero();
    }
    /// Saturating multiplication: mirrors operator+ so repeated-release terms
    /// in schedulability math (wcet * releases) clamp instead of wrapping.
    friend constexpr SimTime operator*(SimTime a, std::uint64_t k) {
        std::uint64_t prod = 0;
        return __builtin_mul_overflow(a.ns_, k, &prod) ? max() : SimTime{prod};
    }
    friend constexpr SimTime operator*(std::uint64_t k, SimTime a) { return a * k; }
    friend constexpr SimTime operator/(SimTime a, std::uint64_t k) { return SimTime{a.ns_ / k}; }

    constexpr SimTime& operator+=(SimTime b) { *this = *this + b; return *this; }
    constexpr SimTime& operator-=(SimTime b) { *this = *this - b; return *this; }

    /// Human-readable rendering with an auto-selected unit, e.g. "12.5 ms".
    [[nodiscard]] std::string to_string() const;

private:
    std::uint64_t ns_ = 0;
};

[[nodiscard]] constexpr SimTime nanoseconds(std::uint64_t v) { return SimTime{v}; }
[[nodiscard]] constexpr SimTime microseconds(std::uint64_t v) { return SimTime{v * 1'000ull}; }
[[nodiscard]] constexpr SimTime milliseconds(std::uint64_t v) { return SimTime{v * 1'000'000ull}; }
[[nodiscard]] constexpr SimTime seconds(std::uint64_t v) { return SimTime{v * 1'000'000'000ull}; }

namespace time_literals {
constexpr SimTime operator""_ns(unsigned long long v) { return nanoseconds(v); }
constexpr SimTime operator""_us(unsigned long long v) { return microseconds(v); }
constexpr SimTime operator""_ms(unsigned long long v) { return milliseconds(v); }
constexpr SimTime operator""_s(unsigned long long v) { return seconds(v); }
}  // namespace time_literals

}  // namespace slm
