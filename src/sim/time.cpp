#include "sim/time.hpp"

#include <cstdio>

namespace slm {

std::string SimTime::to_string() const {
    char buf[48];
    if (ns_ >= 1'000'000'000ull) {
        std::snprintf(buf, sizeof buf, "%.6g s", sec());
    } else if (ns_ >= 1'000'000ull) {
        std::snprintf(buf, sizeof buf, "%.6g ms", ms());
    } else if (ns_ >= 1'000ull) {
        std::snprintf(buf, sizeof buf, "%.6g us", us());
    } else {
        std::snprintf(buf, sizeof buf, "%llu ns", static_cast<unsigned long long>(ns_));
    }
    return buf;
}

}  // namespace slm
