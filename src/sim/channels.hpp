#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <utility>

#include "sim/assert.hpp"
#include "sim/event.hpp"
#include "sim/kernel.hpp"

namespace slm::sim {

/// Specification-model channel library (the "COMM & SYNC CHANNELS" layer of the
/// paper's Fig. 2(a)). All channels are built purely on kernel events plus
/// state; waits use the loop-recheck pattern because events are non-persistent
/// and notify wakes all waiters.

/// Counting semaphore.
class Semaphore {
public:
    Semaphore(Kernel& kernel, unsigned initial, std::string name = "sem")
        : kernel_(kernel), evt_(kernel, name + ".evt"), count_(initial), name_(std::move(name)) {}

    /// P(): block until a token is available, then take it.
    void acquire() {
        while (count_ == 0) {
            kernel_.wait(evt_);
        }
        --count_;
    }

    /// Non-blocking P(): returns false instead of blocking.
    [[nodiscard]] bool try_acquire() {
        if (count_ == 0) {
            return false;
        }
        --count_;
        return true;
    }

    /// V(): return a token and wake waiters.
    void release() {
        ++count_;
        kernel_.notify(evt_);
    }

    [[nodiscard]] unsigned count() const { return count_; }
    [[nodiscard]] const std::string& name() const { return name_; }

private:
    Kernel& kernel_;
    Event evt_;
    unsigned count_;
    std::string name_;
};

/// Mutual-exclusion lock with owner tracking.
class Mutex {
public:
    explicit Mutex(Kernel& kernel, std::string name = "mutex")
        : kernel_(kernel), evt_(kernel, name + ".evt"), name_(std::move(name)) {}

    void lock() {
        Process* self = this_process();
        SLM_ASSERT(self != nullptr, "Mutex::lock() requires process context");
        SLM_ASSERT(owner_ != self, "Mutex is not recursive");
        while (owner_ != nullptr) {
            kernel_.wait(evt_);
        }
        owner_ = self;
    }

    void unlock() {
        SLM_ASSERT(owner_ == this_process(), "Mutex unlocked by non-owner");
        owner_ = nullptr;
        kernel_.notify(evt_);
    }

    [[nodiscard]] bool locked() const { return owner_ != nullptr; }
    [[nodiscard]] const Process* owner() const { return owner_; }

private:
    Kernel& kernel_;
    Event evt_;
    Process* owner_ = nullptr;
    std::string name_;
};

/// RAII guard for Mutex.
class ScopedLock {
public:
    explicit ScopedLock(Mutex& m) : m_(m) { m_.lock(); }
    ~ScopedLock() { m_.unlock(); }
    ScopedLock(const ScopedLock&) = delete;
    ScopedLock& operator=(const ScopedLock&) = delete;

private:
    Mutex& m_;
};

/// One-way synchronization with state (SpecC c_handshake): a send() is
/// remembered until a receive() consumes it, so send-before-receive is safe.
/// Multiple un-received sends collapse into one (it is a flag, not a counter).
class Handshake {
public:
    explicit Handshake(Kernel& kernel, std::string name = "hs")
        : kernel_(kernel), evt_(kernel, name + ".evt"), name_(std::move(name)) {}

    void send() {
        pending_ = true;
        kernel_.notify(evt_);
    }

    void receive() {
        while (!pending_) {
            kernel_.wait(evt_);
        }
        pending_ = false;
    }

    [[nodiscard]] bool pending() const { return pending_; }

private:
    Kernel& kernel_;
    Event evt_;
    bool pending_ = false;
    std::string name_;
};

/// Blocking bounded FIFO queue (SpecC c_queue). capacity == 0 means unbounded
/// (send never blocks).
template <typename T>
class Queue {
public:
    Queue(Kernel& kernel, std::size_t capacity, std::string name = "queue")
        : kernel_(kernel),
          not_empty_(kernel, name + ".rdy"),
          not_full_(kernel, name + ".ack"),
          capacity_(capacity),
          name_(std::move(name)) {}

    void send(T value) {
        while (capacity_ != 0 && buf_.size() >= capacity_) {
            kernel_.wait(not_full_);
        }
        buf_.push_back(std::move(value));
        kernel_.notify(not_empty_);
    }

    [[nodiscard]] T receive() {
        while (buf_.empty()) {
            kernel_.wait(not_empty_);
        }
        T v = std::move(buf_.front());
        buf_.pop_front();
        kernel_.notify(not_full_);
        return v;
    }

    [[nodiscard]] bool try_receive(T& out) {
        if (buf_.empty()) {
            return false;
        }
        out = std::move(buf_.front());
        buf_.pop_front();
        kernel_.notify(not_full_);
        return true;
    }

    [[nodiscard]] std::size_t size() const { return buf_.size(); }
    [[nodiscard]] bool empty() const { return buf_.empty(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

private:
    Kernel& kernel_;
    Event not_empty_;
    Event not_full_;
    std::deque<T> buf_;
    std::size_t capacity_;
    std::string name_;
};

/// N-party barrier: the first N-1 arrivals block; the Nth releases everyone.
class Barrier {
public:
    Barrier(Kernel& kernel, unsigned parties, std::string name = "barrier")
        : kernel_(kernel), evt_(kernel, name + ".evt"), parties_(parties) {
        SLM_ASSERT(parties > 0, "Barrier needs at least one party");
    }

    void arrive_and_wait() {
        const std::uint64_t my_generation = generation_;
        if (++arrived_ == parties_) {
            arrived_ = 0;
            ++generation_;
            kernel_.notify(evt_);
            return;
        }
        while (generation_ == my_generation) {
            kernel_.wait(evt_);
        }
    }

private:
    Kernel& kernel_;
    Event evt_;
    unsigned parties_;
    unsigned arrived_ = 0;
    std::uint64_t generation_ = 0;
};

}  // namespace slm::sim
