#include "sim/context.hpp"

#include <cstdlib>

#include "sim/assert.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define SLM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SLM_ASAN 1
#endif
#endif
#ifndef SLM_ASAN
#define SLM_ASAN 0
#endif

#if SLM_ASAN
#include <pthread.h>
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define SLM_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SLM_TSAN_ENABLED 1
#endif
#endif
#ifndef SLM_TSAN_ENABLED
#define SLM_TSAN_ENABLED 0
#endif

#if SLM_TSAN_ENABLED
// Fiber annotations: TSan keeps a shadow call stack per execution context.
// Without __tsan_switch_to_fiber at every stack switch it attributes frames
// of one coroutine to another, which corrupts its bookkeeping and produces
// false races — the same class of problem the ASan annotations below solve
// for fake stacks. See ci/sanitize.sh --tsan and docs/kernel-internals.md.
#include <sanitizer/tsan_interface.h>
#endif

#if SLM_HAVE_FAST_CONTEXT
// Assembly switch (context_x86_64.S / context_aarch64.S). Saves the callee-
// saved register set into the current stack, flips the stack pointer, and
// restores. `transfer` reaches a resumed context as the return value and a
// fresh context as its entry argument.
extern "C" void* slm_jump_fcontext(void** save_sp, void* target_sp, void* transfer);
#endif

namespace slm::sim {

const char* to_string(ContextBackend b) {
    switch (b) {
        case ContextBackend::Auto: return "auto";
        case ContextBackend::Fast: return "fast";
        case ContextBackend::Ucontext: return "ucontext";
    }
    return "?";
}

bool fast_context_compiled() {
    return SLM_HAVE_FAST_CONTEXT != 0;
}

ContextBackend resolve_backend(ContextBackend requested) {
    if (!fast_context_compiled()) {
        return ContextBackend::Ucontext;
    }
    if (requested == ContextBackend::Auto) {
        const char* env = std::getenv("SLM_FORCE_UCONTEXT");
        if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
            return ContextBackend::Ucontext;
        }
        return ContextBackend::Fast;
    }
    return requested;
}

#if SLM_HAVE_FAST_CONTEXT
namespace {

/// Build the initial frame slm_jump_fcontext's restore path consumes, so that
/// the first switch into the context "returns" into `entry`. Layouts are
/// documented in the matching .S file and docs/kernel-internals.md.
void* make_fast_frame(void* stack_lo, std::size_t size, void (*entry)(void*)) {
    auto top = reinterpret_cast<std::uintptr_t>(stack_lo) + size;
    top &= ~std::uintptr_t{15};  // ABI stack alignment
#if defined(__x86_64__)
    // Low -> high: [0] mxcsr + x87 cw, [1..6] r15 r14 r13 r12 rbx rbp,
    // [7] return address = entry, [8] zero frame terminator. After the
    // restore path's `ret`, rsp = frame+64 = top-8, i.e. rsp % 16 == 8,
    // exactly the state at a normal function entry.
    auto* frame = reinterpret_cast<std::uintptr_t*>(top) - 9;
    std::uint32_t mxcsr = 0;
    asm volatile("stmxcsr %0" : "=m"(mxcsr));
    std::uint16_t fcw = 0;
    asm volatile("fnstcw %0" : "=m"(fcw));
    frame[0] = static_cast<std::uintptr_t>(mxcsr) |
               (static_cast<std::uintptr_t>(fcw) << 32U);
    for (int i = 1; i <= 6; ++i) {
        frame[i] = 0;
    }
    frame[7] = reinterpret_cast<std::uintptr_t>(entry);
    frame[8] = 0;
    return frame;
#elif defined(__aarch64__)
    // 160-byte frame: x19..x28, x29 (zero terminates frame-pointer chains),
    // x30 = entry (the restore path's `ret` target), d8..d15.
    auto* frame = reinterpret_cast<std::uintptr_t*>(top - 160);
    for (int i = 0; i < 20; ++i) {
        frame[i] = 0;
    }
    frame[11] = reinterpret_cast<std::uintptr_t>(entry);  // x30 slot, byte 88
    return frame;
#endif
}

}  // namespace
#endif  // SLM_HAVE_FAST_CONTEXT

Context::~Context() {
#if SLM_TSAN_ENABLED
    if (tsan_fiber_ != nullptr && tsan_fiber_owned_) {
        __tsan_destroy_fiber(tsan_fiber_);
    }
#endif
}

void Context::init(void* stack_lo, std::size_t stack_size, Entry entry, void* arg,
                   ContextBackend backend) {
    entry_ = entry;
    arg_ = arg;
    stack_lo_ = stack_lo;
    stack_size_ = stack_size;
    asan_fake_stack_ = nullptr;
#if SLM_TSAN_ENABLED
    if (tsan_fiber_ != nullptr && tsan_fiber_owned_) {
        __tsan_destroy_fiber(tsan_fiber_);  // re-init of a recycled context
    }
    tsan_fiber_ = __tsan_create_fiber(0);
    tsan_fiber_owned_ = true;
#endif
    if (backend == ContextBackend::Fast) {
#if SLM_HAVE_FAST_CONTEXT
        sp_ = make_fast_frame(stack_lo, stack_size, &Context::fast_entry);
        return;
#else
        SLM_ASSERT(false, "fast context backend not compiled in");
#endif
    }
    getcontext(&uctx_);
    uctx_.uc_stack.ss_sp = stack_lo;
    uctx_.uc_stack.ss_size = stack_size;
    uctx_.uc_link = nullptr;  // entries never return; they switch away forever
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&uctx_, reinterpret_cast<void (*)()>(&Context::ucontext_entry), 2,
                static_cast<unsigned>(self >> 32U),
                static_cast<unsigned>(self & 0xffffffffU));
}

void Context::adopt_thread_stack() {
#if SLM_ASAN
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) == 0) {
        void* lo = nullptr;
        std::size_t sz = 0;
        if (pthread_attr_getstack(&attr, &lo, &sz) == 0) {
            stack_lo_ = lo;
            stack_size_ = sz;
        }
        pthread_attr_destroy(&attr);
    }
#endif
#if SLM_TSAN_ENABLED
    // The scheduler context runs on the calling thread's own stack, whose
    // fiber handle belongs to TSan (never destroyed by us). Re-adopt on every
    // call: a kernel may legally be run from different threads over its life.
    tsan_fiber_ = __tsan_get_current_fiber();
    tsan_fiber_owned_ = false;
#endif
}

void Context::switch_to(Context& from, Context& to, ContextBackend backend,
                        bool finishing) {
#if SLM_ASAN
    // Manual fiber annotations on BOTH backends: ASan must retarget its
    // shadow-stack bookkeeping at every switch or it reports false stack
    // overflows — its swapcontext interceptor alone leaves the current-stack
    // bounds stale, which breaks __asan_handle_no_return when an exception
    // (ProcessKilled) is thrown on a coroutine stack. `finishing` passes
    // nullptr so the fake stack of a dead context is released (its real
    // stack returns to the pool).
    __sanitizer_start_switch_fiber(finishing ? nullptr : &from.asan_fake_stack_,
                                   to.stack_lo_, to.stack_size_);
#endif
#if SLM_TSAN_ENABLED
    // Must be the last annotation before the actual switch. The target fiber
    // always exists: coroutine contexts create theirs in init() and the
    // scheduler context adopts the thread fiber in adopt_thread_stack().
    __tsan_switch_to_fiber(to.tsan_fiber_, 0);
#endif
#if SLM_HAVE_FAST_CONTEXT
    if (backend == ContextBackend::Fast) {
        (void)slm_jump_fcontext(&from.sp_, to.sp_, &to);
    } else
#endif
    {
        // The portable path: swapcontext saves/restores the signal mask too,
        // costing two sigprocmask syscalls per switch.
        swapcontext(&from.uctx_, &to.uctx_);
    }
    (void)backend;
    (void)finishing;
#if SLM_ASAN
    __sanitizer_finish_switch_fiber(from.asan_fake_stack_, nullptr, nullptr);
#endif
}

void Context::first_entry() {
    entry_(arg_);
    SLM_ASSERT(false, "a context entry function returned");
}

void Context::fast_entry(void* raw) {
    auto* ctx = static_cast<Context*>(raw);
#if SLM_ASAN
    __sanitizer_finish_switch_fiber(ctx->asan_fake_stack_, nullptr, nullptr);
#endif
    ctx->first_entry();
}

void Context::ucontext_entry(unsigned hi, unsigned lo) {
    auto* ctx = reinterpret_cast<Context*>((static_cast<std::uintptr_t>(hi) << 32U) |
                                           static_cast<std::uintptr_t>(lo));
#if SLM_ASAN
    __sanitizer_finish_switch_fiber(ctx->asan_fake_stack_, nullptr, nullptr);
#endif
    ctx->first_entry();
}

}  // namespace slm::sim
