#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slm::sim {

/// A coroutine stack handed out by StackPool. Plain value handle; ownership is
/// returned to the pool with release() (or reclaimed by the pool destructor).
struct StackBlock {
    std::byte* base = nullptr;  ///< lowest usable byte, suitably aligned
    std::size_t size = 0;       ///< usable bytes
    void* map = nullptr;        ///< allocation base (mmap or operator new[])
    std::size_t map_len = 0;    ///< mmap length (guarded stacks only)
    bool guarded = false;       ///< has a PROT_NONE guard page below `base`

    [[nodiscard]] explicit operator bool() const { return base != nullptr; }
};

/// Recycles coroutine stacks by power-of-two size class so process churn costs
/// a free-list pop instead of a 256 KiB heap allocation per spawn. With
/// `guard_pages` (debug builds) stacks come from mmap with a PROT_NONE page
/// below the usable range, turning a stack overflow into an immediate fault
/// instead of silent heap corruption — at the price of syscalls per fresh
/// allocation (recycling still avoids them).
class StackPool {
public:
    /// Smallest size class; requests are rounded up to a power of two >= this.
    static constexpr std::size_t kMinClass = 16 * 1024;

    explicit StackPool(bool guard_pages = false);
    ~StackPool();

    StackPool(const StackPool&) = delete;
    StackPool& operator=(const StackPool&) = delete;

    /// A stack of at least `min_size` usable bytes (rounded up to its class).
    [[nodiscard]] StackBlock acquire(std::size_t min_size);

    /// Return a stack to its class's free list for reuse.
    void release(StackBlock blk);

    [[nodiscard]] std::uint64_t bytes_in_use() const { return bytes_in_use_; }
    [[nodiscard]] std::uint64_t recycled() const { return recycled_; }     ///< acquires served from the free list
    [[nodiscard]] std::uint64_t allocated() const { return allocated_; }   ///< fresh allocations
    /// True once a guard-page allocation failed and the pool permanently fell
    /// back to unguarded heap stacks (one warning is printed when that happens).
    [[nodiscard]] bool guard_pages_disabled() const { return guard_disabled_; }

    [[nodiscard]] static std::size_t round_to_class(std::size_t size);

    /// Test seam: make guard-page allocation fail as if mmap/mprotect had
    /// errored, exercising the unguarded-fallback path. Process-wide.
    static void force_guard_failure_for_testing(bool on);

private:
    std::vector<std::vector<StackBlock>> free_by_class_;  ///< indexed by log2(size)
    bool guard_pages_;
    bool guard_disabled_ = false;
    std::uint64_t bytes_in_use_ = 0;
    std::uint64_t recycled_ = 0;
    std::uint64_t allocated_ = 0;
};

}  // namespace slm::sim
