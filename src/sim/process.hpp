#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/context.hpp"
#include "sim/stack_pool.hpp"

namespace slm::sim {

class Kernel;
class Event;

/// Lifecycle states of an SLDL process (kernel-level, not RTOS-level — the RTOS
/// model layers its own task states on top of these, see slm::rtos::TaskState).
enum class ProcState {
    Created,       ///< spawned, never dispatched yet
    Ready,         ///< in the runnable queue of the current delta cycle
    Running,       ///< currently executing on the kernel
    WaitingEvent,  ///< blocked in wait(Event&)
    WaitingTime,   ///< blocked in waitfor(SimTime)
    Joining,       ///< blocked in par()/join() waiting for children
    Done,          ///< body returned normally
    Killed,        ///< terminated via Kernel::kill()
};

[[nodiscard]] const char* to_string(ProcState s);

/// Exception used internally to unwind a killed process's stack so that RAII
/// cleanup on that stack runs. Model code must not catch it (catching by
/// `...` and swallowing would break kill()); the kernel trampoline catches it.
struct ProcessKilled {};

/// A stackful coroutine scheduled by the SLDL kernel. Equivalent to a SpecC
/// behavior instance / SystemC thread process. Created via Kernel::spawn() or
/// Kernel::par(); owned by the kernel for the lifetime of the simulation. Its
/// stack comes from the kernel's StackPool and returns there on completion.
class Process {
public:
    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] int id() const { return id_; }
    [[nodiscard]] ProcState state() const { return state_; }
    [[nodiscard]] Process* parent() const { return parent_; }
    [[nodiscard]] bool done() const {
        return state_ == ProcState::Done || state_ == ProcState::Killed;
    }

private:
    friend class Kernel;
    friend class Event;  // Event::~Event detaches blocked waiters

    Process(Kernel& kernel, std::string name, std::function<void()> body, Process* parent,
            int id);

    Kernel& kernel_;
    std::string name_;
    std::function<void()> body_;
    Process* parent_ = nullptr;
    int id_ = 0;

    ProcState state_ = ProcState::Created;
    Context ctx_;
    StackBlock stack_;

    Event* waiting_on_ = nullptr;           ///< valid while state_ == WaitingEvent
    std::uint64_t wake_token_ = 0;          ///< invalidates stale timed-queue entries
    int join_pending_ = 0;                  ///< outstanding children while Joining
    bool kill_pending_ = false;
    bool in_runnable_ = false;              ///< guards against double-enqueue
    bool timed_out_ = false;                ///< set when wait_timeout() expires
    std::unique_ptr<Event> done_evt_;       ///< lazily created by Kernel::join()
};

}  // namespace slm::sim
