#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "sim/process.hpp"
#include "sim/schedule_point.hpp"
#include "sim/time.hpp"

namespace slm::sim {

/// Thrown (from process context) to stop the whole simulation: the throwing
/// process unwinds with its destructors, the kernel stops dispatching, and
/// run()/run_until() returns with aborted() == true. The schedule explorer's
/// assert handler throws this so a contract violation on one explored path
/// ends that path instead of the host process.
struct SimulationAbort {
    std::string reason;
};

/// Kernel construction parameters.
struct KernelConfig {
    /// Smallest stack the kernel will hand a process: requests below this
    /// (including 0) are clamped, not rejected — models that never recurse can
    /// ask for tiny stacks without tripping an assert.
    static constexpr std::size_t kMinStackSize = 16 * 1024;

    /// Stack size per process. System models keep little on the stack, but the
    /// default is generous because debugging a blown coroutine stack is painful.
    std::size_t stack_size = 256 * 1024;

    /// Allocate process stacks via mmap with a PROT_NONE guard page below the
    /// usable range (debug builds): stack overflow faults immediately instead
    /// of corrupting the heap. Costs syscalls per fresh stack allocation.
    bool guard_pages = false;

    /// Context-switch backend. Auto picks the assembly fast path when compiled
    /// in, unless the SLM_FORCE_UCONTEXT environment variable is set.
    ContextBackend backend = ContextBackend::Auto;
};

/// Aggregate counters maintained by the kernel; cheap enough to be always on.
struct KernelStats {
    std::uint64_t processes_created = 0;
    std::uint64_t process_activations = 0;  ///< process dispatches (sim-level switches)
    std::uint64_t delta_cycles = 0;
    std::uint64_t time_advances = 0;
    std::uint64_t events_notified = 0;
    std::uint64_t stack_bytes_in_use = 0;   ///< live coroutine stack bytes (pool-acquired)
    std::uint64_t stacks_recycled = 0;      ///< spawns served from the stack pool's free list
    std::uint64_t guard_pages_disabled = 0; ///< 1 once guard-page setup failed and the
                                            ///< pool fell back to unguarded stacks
};

/// Observer hook for instrumentation (tracing, test assertions). All callbacks
/// run synchronously inside the kernel; they must not call kernel blocking APIs.
class KernelObserver {
public:
    virtual ~KernelObserver() = default;
    virtual void on_process_state(const Process& /*p*/, ProcState /*from*/,
                                  ProcState /*to*/) {}
    virtual void on_time_advance(SimTime /*now*/) {}
};

/// A named parallel branch for Kernel::par().
struct Branch {
    std::string name;
    std::function<void()> body;
};

/// Discrete-event SLDL simulation kernel with stackful-coroutine processes.
///
/// This is the substrate the paper assumes (SpecC's simulation kernel): it
/// provides processes, `wait`/`notify` events with delta-cycle semantics,
/// `waitfor` time modeling, and `par` fork/join composition. Execution is
/// strictly single-threaded and deterministic: runnable processes execute in
/// FIFO order of becoming ready, and simultaneous timeouts fire in the order
/// they were scheduled.
class Kernel {
public:
    explicit Kernel(KernelConfig cfg = {});
    ~Kernel();

    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    // ---- construction / control (callable from outside process context) ----

    /// Create a process. Callable both from outside (root processes) and from
    /// inside a running process (the new process becomes its child).
    Process* spawn(std::string name, std::function<void()> body);

    /// Run until no runnable or timed activity remains. Processes still blocked
    /// on events at that point are deadlocked; see blocked_processes().
    void run();

    /// Run until simulated time would exceed `t_end`; all activity at instants
    /// <= t_end completes, then now() == t_end. Returns true if timed activity
    /// remains beyond t_end.
    bool run_until(SimTime t_end);

    [[nodiscard]] SimTime now() const { return now_; }
    [[nodiscard]] const KernelStats& stats() const { return stats_; }
    [[nodiscard]] Process* current() const { return current_; }
    /// The context backend this kernel resolved to at construction.
    [[nodiscard]] ContextBackend backend() const { return backend_; }

    /// Processes blocked on events/joins with no pending activity to wake them.
    [[nodiscard]] std::vector<const Process*> blocked_processes() const;

    /// Replace the observer list with `obs` (nullptr clears it). Kept for the
    /// common one-observer case; instrumentation that must coexist with an
    /// already-installed observer (tracing + metrics) uses add_observer().
    void set_observer(KernelObserver* obs) {
        observers_.clear();
        if (obs != nullptr) {
            observers_.push_back(obs);
        }
    }
    /// Attach an additional observer; callbacks run in attachment order.
    void add_observer(KernelObserver* obs) {
        if (obs != nullptr) {
            observers_.push_back(obs);
        }
    }
    void remove_observer(KernelObserver* obs) {
        std::erase(observers_, obs);
    }

    /// Install a schedule controller consulted at every nondeterministic
    /// choice point (see sim/schedule_point.hpp). nullptr (the default)
    /// disables the hook entirely — the kernel then runs its deterministic
    /// FIFO order with zero overhead. The RTOS model reads this controller
    /// through the kernel for its own dispatch-tie choice points.
    void set_schedule_controller(ScheduleController* c) { controller_ = c; }
    [[nodiscard]] ScheduleController* schedule_controller() const { return controller_; }

    /// True once a SimulationAbort stopped the run; reason() carries its text.
    [[nodiscard]] bool aborted() const { return abort_reason_.has_value(); }
    [[nodiscard]] const std::optional<std::string>& abort_reason() const {
        return abort_reason_;
    }

    // ---- process-context API (must be called from inside a process) ----

    /// Block until `e` is notified (or already notified in this delta cycle).
    void wait(Event& e);

    /// Block until `e` is notified or `dt` of simulated time elapsed.
    /// Returns true if the event arrived, false on timeout.
    [[nodiscard]] bool wait_timeout(Event& e, SimTime dt);

    /// Block for `dt` of simulated time. waitfor(0) yields to the next delta.
    void waitfor(SimTime dt);

    /// Re-run after the other currently-runnable processes, same time and delta.
    void yield();

    /// Fork the branches as child processes and block until all have finished.
    void par(std::vector<Branch> branches);
    /// Convenience: unnamed branches (named "<parent>.parN").
    void par(std::initializer_list<std::function<void()>> bodies);

    /// Block until process `p` has finished (returns immediately if it has).
    void join(Process& p);

    // ---- callable from anywhere ----

    /// Handle for a one-shot timer posted with post_at(). Never 0.
    using TimerId = std::uint64_t;

    /// Schedule `fn` to run once, at simulated instant `t` (>= now()). The
    /// callback runs in scheduler context — this_process() is null inside it —
    /// before any process wakeups at the same instant, in posting order. It may
    /// spawn/notify/kill/post_at, but must not block or throw. OS-layer
    /// machinery (watchdogs, delayed interrupt delivery) is the intended user.
    TimerId post_at(SimTime t, std::function<void()> fn);

    /// Cancel a pending timer. Safe to call with an id that already fired or
    /// was already cancelled (no-op). A cancelled timer does not hold the
    /// simulation alive and its instant is never visited on its behalf.
    void cancel_timer(TimerId id);

    /// True while `id` is posted and has neither fired nor been cancelled.
    [[nodiscard]] bool timer_pending(TimerId id) const {
        return timer_fns_.find(id) != timer_fns_.end();
    }

    /// Notify an event: wake current waiters, sticky for the rest of the delta.
    void notify(Event& e);

    /// Terminate a process. If it is the caller, unwinds immediately; otherwise
    /// the victim unwinds (running its destructors) the next time the kernel
    /// touches it. A process that never started is simply marked Killed.
    void kill(Process& p);

private:
    friend class Event;
    friend class Process;  // Process::prepare_context targets the trampoline

    struct TimedEntry {
        SimTime t;
        std::uint64_t seq;  // tie-break: FIFO among equal timestamps
        Process* p;
        std::uint64_t token;
    };
    struct TimedLater {
        bool operator()(const TimedEntry& a, const TimedEntry& b) const {
            return a.t != b.t ? a.t > b.t : a.seq > b.seq;
        }
    };

    struct TimerEntry {
        SimTime t;
        std::uint64_t seq;  // tie-break: FIFO among equal timestamps
        TimerId id;
    };
    struct TimerLater {
        bool operator()(const TimerEntry& a, const TimerEntry& b) const {
            return a.t != b.t ? a.t > b.t : a.seq > b.seq;
        }
    };

    void make_ready(Process* p);
    void set_state(Process* p, ProcState s);
    void block_current_and_reschedule();
    void check_killed();
    void finish_current(ProcState final_state);  // called from trampoline; no return
    bool advance_time(SimTime limit);
    void end_delta();
    void drain_runnable();
    void consult_controller();
    void recycle_stack(Process* p);
    void sync_stack_stats();
    static void trampoline(void* raw);  // raw = Process*; never returns

    KernelConfig cfg_;
    ContextBackend backend_;
    StackPool stack_pool_;
    SimTime now_{};
    std::deque<Process*> runnable_;
    std::priority_queue<TimedEntry, std::vector<TimedEntry>, TimedLater> timed_;
    // One-shot timers: the queue orders instants, the map is the liveness
    // source of truth (cancel_timer erases the map entry; stale queue entries
    // are skimmed without advancing time).
    std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater> timer_q_;
    std::unordered_map<TimerId, std::function<void()>> timer_fns_;
    TimerId next_timer_id_ = 1;
    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<Event*> notified_events_;
    Context sched_ctx_;
    Process* current_ = nullptr;
    std::vector<KernelObserver*> observers_;
    ScheduleController* controller_ = nullptr;
    std::optional<std::string> abort_reason_;
    bool running_ = false;
    std::uint64_t seq_counter_ = 0;
    int next_id_ = 1;
    KernelStats stats_{};
};

/// The kernel currently executing on this thread (set while Kernel::run() is
/// active). Convenience for model code that would otherwise thread a Kernel&
/// through every call.
[[nodiscard]] Kernel& this_kernel();

/// The process currently executing, or nullptr outside process context.
[[nodiscard]] Process* this_process();

}  // namespace slm::sim
