#include "sim/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace slm::sim {

namespace {
// Thread-local so every worker of the parallel exploration engine
// (src/parallel/) can install its own throwing handler without racing the
// others; a single-threaded program sees exactly the old process-global
// behavior.
thread_local AssertHandler g_handler = nullptr;
}  // namespace

AssertHandler set_assert_handler(AssertHandler h) {
    AssertHandler prev = g_handler;
    g_handler = h;
    return prev;
}

namespace detail {

void assert_fail(const char* file, int line, const char* cond, const char* msg) {
    if (g_handler != nullptr) {
        g_handler(AssertInfo{file, line, cond, msg});
        // The handler is expected to throw; returning means it declined.
    }
    std::fprintf(stderr, "SLM_ASSERT failed at %s:%d: %s\n  %s\n", file, line, cond,
                 msg);
    std::abort();
}

}  // namespace detail

}  // namespace slm::sim
