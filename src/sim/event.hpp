#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace slm::sim {

class Kernel;
class Process;

/// SLDL synchronization event with SpecC semantics:
///
///  - `wait(e)` blocks the calling process until the event is notified.
///  - `notify(e)` marks the event notified; delivery happens at the *end of
///    the current delta cycle*, waking every process waiting on the event at
///    that point — including processes whose wait() executed later in the
///    same delta than the notify().
///  - Notifications do not persist across delta cycles or time steps: a
///    notify with nobody waiting by delta end is lost (events carry no
///    persistent state — stateful rendezvous belongs in channels).
///
/// Events are not copyable or movable: blocked processes hold pointers to them.
class Event {
public:
    explicit Event(Kernel& kernel, std::string name = {});
    ~Event();

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    /// Convenience forwarding to Kernel::notify(*this).
    void notify();

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }
    [[nodiscard]] bool notified_this_delta() const { return notified_; }

private:
    friend class Kernel;

    Kernel& kernel_;
    std::string name_;
    std::vector<Process*> waiters_;
    bool notified_ = false;
};

}  // namespace slm::sim
