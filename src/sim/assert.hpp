#pragma once

namespace slm::sim {

/// Location + message of a failed SLM_ASSERT, handed to the assert handler.
struct AssertInfo {
    const char* file;
    int line;
    const char* cond;
    const char* msg;
};

/// Failure hook for SLM_ASSERT. Install with set_assert_handler(); the
/// handler is expected to throw (e.g. sim::SimulationAbort, so the schedule
/// explorer can record the violation and unwind the offending process). A
/// handler that returns normally falls through to the default abort.
using AssertHandler = void (*)(const AssertInfo&);

/// Replace this thread's assert handler; returns the previous one (nullptr =
/// default abort). The handler is thread-local: each simulation runs on one
/// thread, and the parallel exploration engine (src/parallel/) installs a
/// throwing handler per worker without the workers interfering.
AssertHandler set_assert_handler(AssertHandler h);

namespace detail {
/// Out-of-line failure path: runs the installed handler (which normally
/// throws); aborts with a location message if no handler is installed or the
/// handler returned.
[[noreturn]] void assert_fail(const char* file, int line, const char* cond,
                              const char* msg);
}  // namespace detail

}  // namespace slm::sim

/// Model-contract assertion. These check simulation-time invariants (e.g. "a
/// blocking call was made from inside a process context"). Violations indicate
/// a bug in the model or the library, not a recoverable condition, so they
/// abort with a location message. Enabled in all build types: system models are
/// run far fewer times than production software, and a silently-wrong trace is
/// worse than an abort. The schedule explorer installs an assert handler that
/// converts the abort into a recorded property violation instead (see
/// docs/schedule-exploration.md).
#define SLM_ASSERT(cond, msg)                                                   \
    do {                                                                        \
        if (!(cond)) {                                                          \
            ::slm::sim::detail::assert_fail(__FILE__, __LINE__, #cond, (msg)); \
        }                                                                       \
    } while (0)
