#pragma once

#include <cstdio>
#include <cstdlib>

/// Model-contract assertion. These check simulation-time invariants (e.g. "a
/// blocking call was made from inside a process context"). Violations indicate
/// a bug in the model or the library, not a recoverable condition, so they
/// abort with a location message. Enabled in all build types: system models are
/// run far fewer times than production software, and a silently-wrong trace is
/// worse than an abort.
#define SLM_ASSERT(cond, msg)                                                        \
    do {                                                                             \
        if (!(cond)) {                                                               \
            std::fprintf(stderr, "SLM_ASSERT failed at %s:%d: %s\n  %s\n", __FILE__, \
                         __LINE__, #cond, msg);                                      \
            std::abort();                                                            \
        }                                                                            \
    } while (0)
