#include "sim/stack_pool.hpp"

#include <bit>
#include <cstdio>
#include <new>

#include <sys/mman.h>
#include <unistd.h>

#include "sim/assert.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define SLM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SLM_ASAN 1
#endif
#endif
#ifndef SLM_ASAN
#define SLM_ASAN 0
#endif

#if SLM_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace slm::sim {

namespace {

std::size_t page_size() {
    static const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    return page;
}

bool g_force_guard_failure = false;

/// Guarded allocation; returns an empty block (does not assert) when mmap or
/// mprotect fails — e.g. vm.max_map_count exhaustion or a locked-down seccomp
/// profile — so the caller can fall back to an unguarded heap stack.
StackBlock alloc_guarded(std::size_t size) {
    StackBlock blk;
    if (g_force_guard_failure) {
        return blk;
    }
    const std::size_t page = page_size();
    const std::size_t usable = (size + page - 1) / page * page;
    const std::size_t len = usable + page;
    void* m = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (m == MAP_FAILED) {
        return blk;
    }
    // Guard at the low end: stacks grow down, so overrunning the usable range
    // hits PROT_NONE and faults at the overflowing frame.
    if (mprotect(m, page, PROT_NONE) != 0) {
        munmap(m, len);
        return blk;
    }
    blk.base = static_cast<std::byte*>(m) + page;
    blk.size = usable;
    blk.map = m;
    blk.map_len = len;
    blk.guarded = true;
    return blk;
}

StackBlock alloc_plain(std::size_t size) {
    StackBlock blk;
    blk.base = new std::byte[size];  // operator new[] aligns to max_align_t
    blk.size = size;
    blk.map = blk.base;
    blk.guarded = false;
    return blk;
}

void free_block(StackBlock& blk) {
    if (blk.guarded) {
        munmap(blk.map, blk.map_len);
    } else {
        delete[] static_cast<std::byte*>(blk.map);
    }
    blk = StackBlock{};
}

}  // namespace

StackPool::StackPool(bool guard_pages) : guard_pages_(guard_pages) {
    free_by_class_.resize(sizeof(std::size_t) * 8);
}

StackPool::~StackPool() {
    for (auto& cls : free_by_class_) {
        for (auto& blk : cls) {
            free_block(blk);
        }
    }
}

void StackPool::force_guard_failure_for_testing(bool on) {
    g_force_guard_failure = on;
}

std::size_t StackPool::round_to_class(std::size_t size) {
    if (size < kMinClass) {
        size = kMinClass;
    }
    return std::bit_ceil(size);
}

StackBlock StackPool::acquire(std::size_t min_size) {
    const std::size_t size = round_to_class(min_size);
    const auto cls = static_cast<std::size_t>(std::countr_zero(size));
    auto& free_list = free_by_class_[cls];
    StackBlock blk;
    if (!free_list.empty()) {
        blk = free_list.back();
        free_list.pop_back();
        ++recycled_;
    } else {
        if (guard_pages_ && !guard_disabled_) {
            blk = alloc_guarded(size);
            if (!blk) {
                // Graceful degradation: losing overflow detection is better
                // than failing the spawn. Warn once, then stop trying.
                guard_disabled_ = true;
                std::fprintf(stderr,
                             "slm: guard-page stack allocation failed; falling "
                             "back to unguarded stacks for this pool\n");
            }
        }
        if (!blk) {
            blk = alloc_plain(size);
        }
        ++allocated_;
    }
    bytes_in_use_ += blk.size;
    return blk;
}

void StackPool::release(StackBlock blk) {
    SLM_ASSERT(blk.base != nullptr, "release() of an empty StackBlock");
    bytes_in_use_ -= blk.size;
#if SLM_ASAN
    // A recycled stack must present clean shadow to its next owner: frames of
    // the previous process may have left poisoned redzones behind.
    __asan_unpoison_memory_region(blk.base, blk.size);
#endif
    const auto cls = static_cast<std::size_t>(std::countr_zero(std::bit_ceil(blk.size)));
    free_by_class_[cls].push_back(blk);
}

}  // namespace slm::sim
