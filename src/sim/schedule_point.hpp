#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace slm::sim {

/// One nondeterministic scheduling decision exposed to a ScheduleController.
///
/// The kernel and the RTOS model are deterministic by construction: every tie
/// (simultaneous wakeups, equal-priority tasks, IRQ arrival order within one
/// delta) is broken FIFO. Those tie-breaks are exactly the points where a real
/// concurrent system could behave differently. A SchedulePoint reifies one
/// such point: `candidates[0]` is always the default FIFO choice, so a
/// controller that returns 0 everywhere reproduces the uncontrolled run
/// bit-for-bit.
struct SchedulePoint {
    enum class Kind {
        /// Kernel level: which runnable process executes next within the
        /// current delta cycle (covers simultaneous timeout wakeups, multiple
        /// event waiters released together, and ISR processes racing tasks).
        DeltaOrder,
        /// RTOS level: which of several policy-equivalent ready tasks (same
        /// effective priority / deadline / period key) gets the CPU.
        TaskDispatch,
    };

    Kind kind = Kind::DeltaOrder;
    SimTime now{};
    /// Candidate names, index-aligned with the controller's return value.
    /// Always size() >= 2 — trivial decisions are never surfaced.
    std::vector<std::string> candidates;
};

[[nodiscard]] inline const char* to_string(SchedulePoint::Kind k) {
    return k == SchedulePoint::Kind::DeltaOrder ? "delta_order" : "task_dispatch";
}

/// Override hook for schedule-space exploration (see slm::explore). Installed
/// with Kernel::set_schedule_controller(); consulted synchronously at every
/// SchedulePoint. Implementations must be deterministic functions of the
/// decision sequence if replayability is desired, and must return an index
/// `< pt.candidates.size()`.
class ScheduleController {
public:
    virtual ~ScheduleController() = default;
    [[nodiscard]] virtual std::size_t choose(const SchedulePoint& pt) = 0;
};

}  // namespace slm::sim
