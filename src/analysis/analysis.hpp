#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace slm::analysis {

/// A periodic task for schedulability analysis. Deadline 0 means "= period".
/// Priorities follow the simulator's convention (smaller = higher); for RMS,
/// assign_rms_priorities() derives them from periods.
struct PeriodicTaskSpec {
    std::string name;
    SimTime period;
    SimTime wcet;
    SimTime deadline{};
    int priority = 0;

    [[nodiscard]] SimTime effective_deadline() const {
        return deadline.is_zero() ? period : deadline;
    }
};

/// Total processor utilization sum(C_i / T_i).
[[nodiscard]] double utilization(std::span<const PeriodicTaskSpec> tasks);

/// Liu & Layland bound n(2^(1/n) - 1) for rate-monotonic scheduling.
[[nodiscard]] double rms_utilization_bound(std::size_t n);

/// Sufficient (not necessary) RMS test: U <= n(2^(1/n)-1).
[[nodiscard]] bool rms_schedulable_by_bound(std::span<const PeriodicTaskSpec> tasks);

/// Exact EDF test for implicit-deadline periodic tasks: U <= 1.
[[nodiscard]] bool edf_schedulable(std::span<const PeriodicTaskSpec> tasks);

/// Set priorities rate-monotonically (shorter period = higher priority).
void assign_rms_priorities(std::span<PeriodicTaskSpec> tasks);

/// Exact worst-case response time of tasks[idx] under preemptive fixed
/// priorities (the standard recurrence R = C + sum over higher-priority j of
/// ceil(R / T_j) C_j). Returns nullopt if the recurrence exceeds the task's
/// deadline (unschedulable) or fails to converge.
[[nodiscard]] std::optional<SimTime> response_time(
    std::span<const PeriodicTaskSpec> tasks, std::size_t idx);

/// Response time with a blocking term B (R = C + B + interference): under the
/// priority-inheritance protocol, B is bounded by the longest critical
/// section of any lower-priority task sharing a resource (see OsMutex).
[[nodiscard]] std::optional<SimTime> response_time_with_blocking(
    std::span<const PeriodicTaskSpec> tasks, std::size_t idx, SimTime blocking);

/// Necessary-and-sufficient fixed-priority test via response-time analysis.
[[nodiscard]] bool rta_schedulable(std::span<const PeriodicTaskSpec> tasks);

/// LCM of all task periods — the horizon after which a synchronous periodic
/// schedule repeats. One hyperperiod bounds both simulation-based deadline
/// checks and schedule-space exploration (slm::explore) of a periodic task
/// set. Returns nullopt when the LCM exceeds SimTime::max() (randomized
/// period sets with coprime periods blow up fast); returns zero for an
/// empty set. Callers that need a usable horizon anyway should treat
/// nullopt as "effectively aperiodic" and pick a bounded horizon — the
/// soak oracle records the overflow as a diagnostic instead of trusting a
/// wrapped value.
[[nodiscard]] std::optional<SimTime> hyperperiod_checked(
    std::span<const PeriodicTaskSpec> tasks);

/// Clamping wrapper over hyperperiod_checked(): saturates to SimTime::max()
/// on overflow, for callers that only need an upper bound.
[[nodiscard]] SimTime hyperperiod(std::span<const PeriodicTaskSpec> tasks);

}  // namespace slm::analysis
