#include "analysis/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace slm::analysis {

double utilization(std::span<const PeriodicTaskSpec> tasks) {
    double u = 0;
    for (const PeriodicTaskSpec& t : tasks) {
        u += static_cast<double>(t.wcet.ns()) / static_cast<double>(t.period.ns());
    }
    return u;
}

double rms_utilization_bound(std::size_t n) {
    if (n == 0) {
        return 1.0;
    }
    const double nn = static_cast<double>(n);
    return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

bool rms_schedulable_by_bound(std::span<const PeriodicTaskSpec> tasks) {
    return utilization(tasks) <= rms_utilization_bound(tasks.size()) + 1e-12;
}

bool edf_schedulable(std::span<const PeriodicTaskSpec> tasks) {
    return utilization(tasks) <= 1.0 + 1e-12;
}

void assign_rms_priorities(std::span<PeriodicTaskSpec> tasks) {
    std::vector<std::size_t> order(tasks.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return tasks[a].period < tasks[b].period;
    });
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
        tasks[order[rank]].priority = static_cast<int>(rank);
    }
}

std::optional<SimTime> response_time(std::span<const PeriodicTaskSpec> tasks,
                                     std::size_t idx) {
    return response_time_with_blocking(tasks, idx, SimTime::zero());
}

std::optional<SimTime> response_time_with_blocking(
    std::span<const PeriodicTaskSpec> tasks, std::size_t idx, SimTime blocking) {
    const PeriodicTaskSpec& ti = tasks[idx];
    const SimTime deadline = ti.effective_deadline();
    SimTime r = ti.wcet + blocking;
    for (int iter = 0; iter < 10'000; ++iter) {
        SimTime next = ti.wcet + blocking;
        for (std::size_t j = 0; j < tasks.size(); ++j) {
            if (j == idx || tasks[j].priority >= ti.priority) {
                continue;  // only strictly higher-priority tasks interfere
            }
            // ceil(r / T_j) without the usual r + T - 1 trick, which wraps
            // for r near SimTime::max() on wildly unschedulable random sets.
            const std::uint64_t p = tasks[j].period.ns();
            const std::uint64_t releases = r.ns() / p + (r.ns() % p != 0 ? 1 : 0);
            next += tasks[j].wcet * releases;  // saturating *, + (sim/time.hpp)
        }
        if (next == SimTime::max()) {
            return std::nullopt;  // interference saturated: divergent
        }
        if (next == r) {
            return r;
        }
        if (next > deadline) {
            return std::nullopt;
        }
        r = next;
    }
    return std::nullopt;  // did not converge
}

std::optional<SimTime> hyperperiod_checked(
    std::span<const PeriodicTaskSpec> tasks) {
    // Accumulate in unsigned __int128 so the overflow test is exact even for
    // intermediate products near 2^64 (lcm/g * p can exceed uint64 before the
    // final gcd reduction would bring it back down — with pairwise reduction
    // it never does, but the wide accumulator makes that reasoning local).
    unsigned __int128 lcm = 0;
    for (const PeriodicTaskSpec& t : tasks) {
        const auto p = static_cast<std::uint64_t>(t.period.ns());
        if (p == 0) {
            continue;  // aperiodic entries don't constrain the hyperperiod
        }
        if (lcm == 0) {
            lcm = p;
            continue;
        }
        const std::uint64_t g = std::gcd(static_cast<std::uint64_t>(lcm), p);
        lcm = (lcm / g) * p;
        if (lcm > static_cast<unsigned __int128>(SimTime::max().ns())) {
            return std::nullopt;  // LCM blew past the representable horizon
        }
    }
    return SimTime{static_cast<std::uint64_t>(lcm)};
}

SimTime hyperperiod(std::span<const PeriodicTaskSpec> tasks) {
    const std::optional<SimTime> h = hyperperiod_checked(tasks);
    return h.has_value() ? *h : SimTime::max();
}

bool rta_schedulable(std::span<const PeriodicTaskSpec> tasks) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto r = response_time(tasks, i);
        if (!r.has_value() || *r > tasks[i].effective_deadline()) {
            return false;
        }
    }
    return true;
}

}  // namespace slm::analysis
