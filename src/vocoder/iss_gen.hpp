#pragma once

#include <cstdint>
#include <string>

#include "iss/assembler.hpp"

namespace slm::vocoder {

/// Guest memory map and kernel object ids shared between the generated
/// assembly and the host-side testbench of the implementation model.
inline constexpr std::int32_t kMicRxAddr = 256;     ///< 40-word sub-frame DMA buffer
inline constexpr std::int32_t kFrameBufAddr = 512;  ///< 160-word assembled frame
inline constexpr std::int32_t kBitsBufAddr = 768;   ///< encoder output ([0] = checksum)
inline constexpr int kSemSubframe = 1;
inline constexpr int kSemFrame = 2;
inline constexpr int kSemBits = 3;

/// Host-notify codes (r1 of SYS 5; r2 carries the payload).
inline constexpr std::int32_t kNotifyFrameReady = 1;
inline constexpr std::int32_t kNotifyFrameDecoded = 2;
inline constexpr std::int32_t kNotifyChecksum = 3;

/// The generated guest software image: driver, encoder, and decoder task
/// entry points plus the assembled program. `listing` is the full assembly
/// text (the implementation-model analogue of the compiled codec source whose
/// size Table 1 reports).
struct GuestImage {
    iss::Program program;
    std::int32_t driver_entry = 0;
    std::int32_t encoder_entry = 0;
    std::int32_t decoder_entry = 0;
    std::string listing;
    int listing_lines = 0;
};

/// Generate the vocoder guest software for `frames` frames. The compute
/// kernels are calibrated MAC/load loops over the real frame data whose cycle
/// counts hit the implementation-model targets (timing.hpp: ~93% of the WCET
/// annotations); the encoder additionally computes the FNV-1a frame checksum
/// in guest code so the host can verify end-to-end data integrity.
[[nodiscard]] GuestImage build_vocoder_guest(std::size_t frames);

}  // namespace slm::vocoder
