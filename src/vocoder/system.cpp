#include "vocoder/system.hpp"

#include <algorithm>
#include <utility>

namespace slm::vocoder {

Subframe subframe_of(const Frame& f, int idx) {
    Subframe sf;
    for (int i = 0; i < kSubframeSamples; ++i) {
        sf.samples[static_cast<std::size_t>(i)] =
            f.samples[static_cast<std::size_t>(idx * kSubframeSamples + i)];
    }
    return sf;
}

std::vector<Frame> make_vocoder_input(const VocoderConfig& cfg) {
    SpeechSource src{cfg.seed};
    std::vector<Frame> frames;
    frames.reserve(cfg.frames);
    for (std::size_t i = 0; i < cfg.frames; ++i) {
        frames.push_back(src.next_frame());
    }
    return frames;
}

sys::AppSpec vocoder_app_spec(std::size_t frames) {
    sys::AppSpec app;
    app.name = "vocoder";
    app.latency_deadline = kFramePeriod;
    app.tasks = {
        sys::TaskSpec{"driver",
                      cycles_to_time(kSubframeCopyWcetCycles) * kSubframesPerFrame,
                      SimTime{}, SimTime{}, frames, kDriverPriority},
        sys::TaskSpec{"encoder", cycles_to_time(kEncodeWcetCycles), SimTime{},
                      SimTime{}, frames, kEncoderPriority},
        sys::TaskSpec{"decoder", cycles_to_time(kDecodeWcetCycles), SimTime{},
                      SimTime{}, frames, kDecoderPriority},
    };
    app.channels = {
        sys::ChannelSpec{"audio", "", "driver", sizeof(Subframe), 0},
        sys::ChannelSpec{"frames", "driver", "encoder", sizeof(Frame), 0},
        sys::ChannelSpec{"bits", "encoder", "decoder", 244, 0},
    };
    app.stimuli = {sys::StimulusSpec{"audio_in", "audio", kSubframePeriod,
                                     frames * kSubframesPerFrame}};
    return app;
}

namespace {

sys::PlatformSpec vocoder_buses(sys::PlatformSpec platform) {
    platform.buses = {
        sys::BusSpec{"audio_bus", SimTime::zero(), SimTime::zero(),
                     arch::BusArbitration::Fifo},
        sys::BusSpec{"sys_bus", microseconds(1), nanoseconds(50),
                     arch::BusArbitration::Fifo},
    };
    return platform;
}

}  // namespace

sys::PlatformSpec vocoder_two_pe_platform(const VocoderConfig& cfg) {
    sys::PlatformSpec platform;
    platform.name = "dsp-pair";
    platform.pes = {
        sys::PeSpec{"DSP0", 1, 1, cfg.rtos.policy, cfg.rtos.context_switch_overhead, 1},
        sys::PeSpec{"DSP1", 1, 1, cfg.rtos.policy, cfg.rtos.context_switch_overhead, 1},
    };
    return vocoder_buses(std::move(platform));
}

sys::PlatformSpec vocoder_sweep_platform(const VocoderConfig& cfg) {
    sys::PlatformSpec platform;
    platform.name = "arm+dsp";
    platform.pes = {
        sys::PeSpec{"ARM", 1, 2, cfg.rtos.policy, cfg.rtos.context_switch_overhead, 1},
        sys::PeSpec{"DSP", 2, 1, cfg.rtos.policy, cfg.rtos.context_switch_overhead, 4},
    };
    return vocoder_buses(std::move(platform));
}

sys::MappingSpec vocoder_split_mapping() {
    sys::MappingSpec m;
    m.name = "split";
    m.bindings = {
        sys::TaskBinding{"driver", "DSP0", kDriverPriority},
        sys::TaskBinding{"encoder", "DSP0", kEncoderPriority},
        sys::TaskBinding{"decoder", "DSP1", kDriverPriority},
    };
    m.routes = {
        sys::ChannelRoute{"audio", "audio_bus"},
        sys::ChannelRoute{"frames", ""},
        sys::ChannelRoute{"bits", "sys_bus"},
    };
    return m;
}

sys::EnumOptions vocoder_enum_options() {
    sys::EnumOptions opts;
    opts.default_bus = "sys_bus";
    opts.fixed_routes = {sys::ChannelRoute{"audio", "audio_bus"}};
    return opts;
}

std::shared_ptr<VocoderSysOutcome> attach_vocoder_behaviors(sys::System& system,
                                                            const VocoderConfig& cfg) {
    auto outcome = std::make_shared<VocoderSysOutcome>();
    outcome->ready.resize(cfg.frames);
    outcome->done.resize(cfg.frames);

    // Per-run payload state, keyed by the frame index each Token carries.
    // Tokens model the transfers' timing; data stays host-side, exactly as
    // abstract-model payloads consume no simulated time anyway.
    auto input = std::make_shared<std::vector<Frame>>(make_vocoder_input(cfg));
    auto assembled = std::make_shared<std::vector<Frame>>(cfg.frames);
    auto encoded = std::make_shared<std::vector<EncodedFrame>>(cfg.frames);
    auto enc = std::make_shared<Encoder>();
    auto dec = std::make_shared<Decoder>();

    system.set_behavior("driver", [outcome, input, assembled](sys::TaskCtx& ctx) {
        const std::size_t f = ctx.job();
        Frame cur;
        for (int s = 0; s < kSubframesPerFrame; ++s) {
            (void)ctx.recv("audio");
            const Subframe sf = subframe_of((*input)[f], s);
            ctx.exec(cycles_to_time(kSubframeCopyWcetCycles));
            for (int i = 0; i < kSubframeSamples; ++i) {
                cur.samples[static_cast<std::size_t>(s * kSubframeSamples + i)] =
                    sf.samples[static_cast<std::size_t>(i)];
            }
        }
        outcome->ready[f] = ctx.now();
        (*assembled)[f] = cur;
        ctx.send("frames", sys::Token{f, outcome->ready[f]});
    });

    system.set_behavior("encoder", [assembled, encoded, enc](sys::TaskCtx& ctx) {
        const std::size_t f = ctx.job();
        const sys::Token t = ctx.recv("frames");
        EncodedFrame e = enc->encode((*assembled)[f]);
        ctx.exec(cycles_to_time(kEncodeWcetCycles));
        (*encoded)[f] = std::move(e);
        // The bus transfer is executed (and its time charged) by the encoder
        // task acting as bus master — ctx.send goes through OsCore::io_wait.
        ctx.send("bits", sys::Token{f, t.born});
    });

    system.set_behavior("decoder", [outcome, input, encoded, dec](sys::TaskCtx& ctx) {
        const std::size_t f = ctx.job();
        (void)ctx.recv("bits");
        const EncodedFrame& e = (*encoded)[f];
        const Frame out = dec->decode(e);
        ctx.exec(cycles_to_time(kDecodeWcetCycles));
        outcome->done[f] = ctx.now();
        ctx.record_latency(outcome->done[f] - outcome->ready[f]);
        outcome->data_ok =
            outcome->data_ok && e.checksum == frame_checksum((*input)[f]);
        outcome->min_snr_db = std::min(outcome->min_snr_db, snr_db((*input)[f], out));
    });

    return outcome;
}

sys::SystemSetup vocoder_setup(const VocoderConfig& cfg) {
    return [cfg](sys::System& system) { (void)attach_vocoder_behaviors(system, cfg); };
}

}  // namespace slm::vocoder
