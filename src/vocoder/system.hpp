#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sys/elaborate.hpp"
#include "sys/spec.hpp"
#include "sys/sweep.hpp"
#include "vocoder/codec.hpp"
#include "vocoder/models.hpp"
#include "vocoder/timing.hpp"

namespace slm::vocoder {

/// The vocoder as a declarative slm::sys triple: the encoder/decoder split of
/// run_vocoder_two_pe is expressed as AppSpec + MappingSpec instead of
/// hand-wired kernel objects, and the same AppSpec drives mapping sweeps over
/// heterogeneous platforms (docs/system-mapping.md walks the full flow).

constexpr int kSubframeSamples = kFrameSamples / kSubframesPerFrame;

/// One serial-audio-port transfer unit: a quarter frame.
struct Subframe {
    std::array<std::int32_t, kSubframeSamples> samples{};
};

[[nodiscard]] Subframe subframe_of(const Frame& f, int idx);

/// The seeded speech input shared by every vocoder model variant.
[[nodiscard]] std::vector<Frame> make_vocoder_input(const VocoderConfig& cfg);

/// Application: driver -> encoder -> decoder, fed by the 5 ms sub-frame
/// stimulus on the "audio" channel; "frames" carries assembled frames,
/// "bits" the 244-byte encoded frames. One job per speech frame;
/// latency_deadline is the 20 ms frame period.
[[nodiscard]] sys::AppSpec vocoder_app_spec(std::size_t frames);

/// The canonical homogeneous platform of run_vocoder_two_pe: DSP0 + DSP1 at
/// speed 1/1 (policy and context-switch cost from cfg.rtos), a zero-latency
/// audio bus, and the 1 us + 50 ns/byte system bus.
[[nodiscard]] sys::PlatformSpec vocoder_two_pe_platform(const VocoderConfig& cfg);

/// Heterogeneous sweep platform: a slow ARM control core (speed 1/2, cheap)
/// next to a fast DSP (speed 2/1, 4x the unit cost) on the same buses — the
/// paper's Fig. 1 design-space axis the mapping sweep explores.
[[nodiscard]] sys::PlatformSpec vocoder_sweep_platform(const VocoderConfig& cfg);

/// The classic split: driver + encoder on DSP0, decoder on DSP1, encoded
/// frames over the system bus, assembled frames intra-PE.
[[nodiscard]] sys::MappingSpec vocoder_split_mapping();

/// Enumeration knobs for vocoder mapping sweeps: the stimulus channel pinned
/// to the audio bus, everything cross-PE on the system bus, no pinned tasks —
/// 3 tasks over an N-PE platform yields N^3 candidates.
[[nodiscard]] sys::EnumOptions vocoder_enum_options();

/// Functional results of one elaborated vocoder run, filled by the behaviors
/// attach_vocoder_behaviors() installs.
struct VocoderSysOutcome {
    bool data_ok = true;
    double min_snr_db = 1e9;
    std::vector<SimTime> ready;  ///< frame assembled by the driver
    std::vector<SimTime> done;   ///< frame decoded
};

/// Install the real codec behaviors (assemble / encode+checksum / decode+SNR)
/// on an elaborated system built from vocoder_app_spec. Payloads live in
/// shared per-run state keyed by the frame index carried in each Token; the
/// decoder reports ready->done transcoding delay as the system latency
/// metric. Call between construction and run().
std::shared_ptr<VocoderSysOutcome> attach_vocoder_behaviors(sys::System& system,
                                                            const VocoderConfig& cfg);

/// A sys::SystemSetup for sweeps: attaches fresh behaviors (own input, own
/// codec state) to each candidate — safe to call concurrently from sweep
/// workers.
[[nodiscard]] sys::SystemSetup vocoder_setup(const VocoderConfig& cfg);

}  // namespace slm::vocoder
