#include "vocoder/models.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <vector>

#include "arch/arch.hpp"
#include "iss/cpu.hpp"
#include "iss/guest_os.hpp"
#include "refine/refiner.hpp"
#include "refine/vocoder_spec.hpp"
#include "rtos/os_channels.hpp"
#include "sim/assert.hpp"
#include "sim/channels.hpp"
#include "sim/kernel.hpp"
#include "sys/elaborate.hpp"
#include "vocoder/codec.hpp"
#include "vocoder/iss_gen.hpp"
#include "vocoder/system.hpp"
#include "vocoder/timing.hpp"

namespace slm::vocoder {

namespace {

std::vector<Frame> make_input(const VocoderConfig& cfg) {
    return make_vocoder_input(cfg);
}

struct DelayStats {
    std::vector<SimTime> ready;
    std::vector<SimTime> done;

    explicit DelayStats(std::size_t n) : ready(n), done(n) {}

    void fill(VocoderResult& r) const {
        SimTime total, worst;
        for (std::size_t i = 0; i < done.size(); ++i) {
            const SimTime d = done[i] - ready[i];
            total += d;
            worst = std::max(worst, d);
        }
        r.avg_transcoding_delay = done.empty() ? SimTime{} : total / done.size();
        r.max_transcoding_delay = worst;
    }
};

/// Lines of the refined (architecture-level) vocoder model source.
int refined_spec_lines() {
    refine::RefineConfig rc;
    rc.os_owner = "DspPe";
    rc.tasks["Coder"] = refine::TaskSpec{"APERIODIC", 0, kEncodeWcetCycles};
    rc.tasks["Decoder"] = refine::TaskSpec{"APERIODIC", 0, kDecodeWcetCycles};
    rc.tasks["BusDriver"] = refine::TaskSpec{"APERIODIC", 0, kSubframeCopyWcetCycles};
    const refine::RefineResult r = refine::Refiner{rc}.refine(refine::kVocoderSpec);
    SLM_ASSERT(r.ok(), "vocoder spec refinement failed");
    return r.report.lines_total + r.report.lines_added;
}

int spec_lines() {
    return static_cast<int>(
        std::count(refine::kVocoderSpec.begin(), refine::kVocoderSpec.end(), '\n'));
}

class WallClock {
public:
    WallClock() : start_(std::chrono::steady_clock::now()) {}
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

}  // namespace

rtos::RtosConfig VocoderConfig::default_rtos_config() {
    rtos::RtosConfig rc;
    rc.cpu_name = "DSP";
    rc.policy = rtos::SchedPolicy::Priority;
    rc.context_switch_overhead = microseconds(100);
    return rc;
}

// ---- unscheduled specification model ----

VocoderResult run_vocoder_unscheduled(const VocoderConfig& cfg) {
    const std::vector<Frame> input = make_input(cfg);
    sim::Kernel k;
    arch::Bus bus{k, "audio_bus", arch::Bus::Config{SimTime::zero(), SimTime::zero()}};
    arch::BusLink<Subframe> link{k, bus, "audio"};
    sim::Semaphore sub_sem{k, 0, "sub_sem"};
    sim::Queue<Frame> frame_q{k, 0, "frame_q"};
    sim::Queue<EncodedFrame> bits_q{k, 0, "bits_q"};
    DelayStats delays{cfg.frames};
    VocoderResult res;
    res.frames = cfg.frames;
    res.min_snr_db = 1e9;
    res.data_ok = true;
    trace::TraceSink* rec = cfg.tracer;

    const auto exec = [&](const char* who, SimTime dt) {
        if (rec != nullptr) {
            rec->exec_begin(k.now(), "DSP", who);
        }
        k.waitfor(dt);
        if (rec != nullptr) {
            rec->exec_end(k.now(), "DSP", who);
        }
    };

    // Serial audio port: 4 sub-frame transfers per 20 ms frame.
    k.spawn("audio_port", [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                k.waitfor(kSubframePeriod);
                link.post(subframe_of(input[f], s), [&](SimTime dt) { k.waitfor(dt); });
            }
        }
    });

    // ISR generated as part of the bus driver (paper Fig. 3): semaphore signal.
    std::deque<SimTime> irq_times;
    k.spawn("ISR", [&] {
        for (;;) {
            k.wait(link.irq().event());
            if (rec != nullptr) {
                rec->irq(k.now(), "DSP", "audio");
            }
            irq_times.push_back(k.now());
            sub_sem.release();
        }
    });

    k.spawn("driver", [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            Frame cur;
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                sub_sem.acquire();
                Subframe sf;
                SLM_ASSERT(link.try_fetch(sf), "driver woke without data");
                const SimTime irq_at = irq_times.front();
                irq_times.pop_front();
                exec("driver", cycles_to_time(kSubframeCopyWcetCycles));
                res.max_input_latency =
                    std::max(res.max_input_latency, k.now() - irq_at);
                for (int i = 0; i < kSubframeSamples; ++i) {
                    cur.samples[static_cast<std::size_t>(s * kSubframeSamples + i)] =
                        sf.samples[static_cast<std::size_t>(i)];
                }
            }
            delays.ready[f] = k.now();
            frame_q.send(cur);
        }
    });

    k.spawn("encoder", [&] {
        Encoder enc;
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            const Frame fr = frame_q.receive();
            EncodedFrame e = enc.encode(fr);
            exec("encoder", cycles_to_time(kEncodeWcetCycles));
            bits_q.send(std::move(e));
        }
    });

    k.spawn("decoder", [&] {
        Decoder dec;
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            const EncodedFrame e = bits_q.receive();
            const Frame out = dec.decode(e);
            exec("decoder", cycles_to_time(kDecodeWcetCycles));
            delays.done[f] = k.now();
            res.data_ok = res.data_ok && e.checksum == frame_checksum(input[f]);
            res.min_snr_db = std::min(res.min_snr_db, snr_db(input[f], out));
        }
    });

    const WallClock wall;
    k.run();
    res.wall_seconds = wall.seconds();
    res.sim_duration = k.now();
    res.context_switches = 0;
    delays.fill(res);
    res.model_loc = spec_lines();
    return res;
}

// ---- architecture model ----

VocoderResult run_vocoder_architecture(const VocoderConfig& cfg) {
    const std::vector<Frame> input = make_input(cfg);
    sim::Kernel k;
    rtos::RtosConfig rc = cfg.rtos;
    rc.cpu_name = "DSP";
    rc.tracer = cfg.tracer;
    arch::ProcessingElement pe{k, "DSP", rc};
    rtos::OsCore& os = pe.os();
    if (cfg.on_os) {
        cfg.on_os(os);
    }

    arch::Bus bus{k, "audio_bus", arch::Bus::Config{SimTime::zero(), SimTime::zero()}};
    arch::BusLink<Subframe> link{k, bus, "audio"};
    rtos::OsSemaphore sub_sem{os, 0, "sub_sem"};
    rtos::OsQueue<Frame> frame_q{os, 0, "frame_q"};
    rtos::OsQueue<EncodedFrame> bits_q{os, 0, "bits_q"};
    DelayStats delays{cfg.frames};
    VocoderResult res;
    res.frames = cfg.frames;
    res.min_snr_db = 1e9;
    res.data_ok = true;

    k.spawn("audio_port", [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                k.waitfor(kSubframePeriod);
                link.post(subframe_of(input[f], s), [&](SimTime dt) { k.waitfor(dt); });
            }
        }
    });

    std::deque<SimTime> irq_times;
    pe.attach_isr(link.irq(), [&] {
        irq_times.push_back(k.now());
        sub_sem.release();
    });

    pe.add_task("driver", kDriverPriority, [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            Frame cur;
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                sub_sem.acquire();
                Subframe sf;
                SLM_ASSERT(link.try_fetch(sf), "driver woke without data");
                const SimTime irq_at = irq_times.front();
                irq_times.pop_front();
                os.time_wait(cycles_to_time(kSubframeCopyWcetCycles));
                res.max_input_latency =
                    std::max(res.max_input_latency, k.now() - irq_at);
                for (int i = 0; i < kSubframeSamples; ++i) {
                    cur.samples[static_cast<std::size_t>(s * kSubframeSamples + i)] =
                        sf.samples[static_cast<std::size_t>(i)];
                }
            }
            delays.ready[f] = k.now();
            frame_q.send(cur);
        }
    });

    pe.add_task("encoder", kEncoderPriority, [&] {
        Encoder enc;
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            const Frame fr = frame_q.receive();
            EncodedFrame e = enc.encode(fr);
            os.time_wait(cycles_to_time(kEncodeWcetCycles));
            bits_q.send(std::move(e));
        }
    });

    pe.add_task("decoder", kDecoderPriority, [&] {
        Decoder dec;
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            const EncodedFrame e = bits_q.receive();
            const Frame out = dec.decode(e);
            os.time_wait(cycles_to_time(kDecodeWcetCycles));
            delays.done[f] = k.now();
            res.data_ok = res.data_ok && e.checksum == frame_checksum(input[f]);
            res.min_snr_db = std::min(res.min_snr_db, snr_db(input[f], out));
        }
    });

    pe.start();
    const WallClock wall;
    k.run();
    res.wall_seconds = wall.seconds();
    res.sim_duration = k.now();
    res.context_switches = os.stats().context_switches;
    delays.fill(res);
    res.model_loc = refined_spec_lines();
    return res;
}

// ---- two-PE architecture model ----

TwoPeResult run_vocoder_two_pe(const VocoderConfig& cfg) {
    // The encoder/decoder split is pure specification now: the same app spec
    // drives this canonical mapping and the design-space sweeps over
    // heterogeneous platforms (sys::run_sweep + vocoder_sweep_platform).
    sys::SystemOptions opts;
    opts.base_rtos = cfg.rtos;
    opts.tracer = cfg.tracer;
    opts.on_os = cfg.on_os;
    sys::System system{vocoder_app_spec(cfg.frames), vocoder_two_pe_platform(cfg),
                       vocoder_split_mapping(), std::move(opts)};
    const std::shared_ptr<VocoderSysOutcome> outcome =
        attach_vocoder_behaviors(system, cfg);

    const WallClock wall;
    system.run();

    TwoPeResult two{};
    VocoderResult& res = two.overall;
    res.frames = cfg.frames;
    res.wall_seconds = wall.seconds();
    res.sim_duration = system.kernel().now();
    res.data_ok = outcome->data_ok;
    res.min_snr_db = outcome->min_snr_db;
    res.context_switches = system.pe("DSP0")->os().stats().context_switches +
                           system.pe("DSP1")->os().stats().context_switches;
    DelayStats delays{cfg.frames};
    delays.ready = outcome->ready;
    delays.done = outcome->done;
    delays.fill(res);
    res.model_loc = refined_spec_lines();
    two.pe0_busy = system.pe("DSP0")->os().busy_time();
    two.pe1_busy = system.pe("DSP1")->os().busy_time();
    two.bus_transfers = system.bus("sys_bus")->transfers();
    two.bus_busy = system.bus("sys_bus")->busy_time();
    return two;
}

// ---- implementation model ----

VocoderResult run_vocoder_implementation(const VocoderConfig& cfg) {
    const std::vector<Frame> input = make_input(cfg);
    const GuestImage img = build_vocoder_guest(cfg.frames);

    iss::Cpu cpu{img.program.code, 65536};
    iss::GuestKernel gk{cpu};
    gk.sem_init(kSemSubframe, 0);
    gk.sem_init(kSemFrame, 0);
    gk.sem_init(kSemBits, 0);
    gk.create_task("driver", kDriverPriority, img.driver_entry, 60000);
    gk.create_task("encoder", kEncoderPriority, img.encoder_entry, 61000);
    gk.create_task("decoder", kDecoderPriority, img.decoder_entry, 62000);

    sim::Kernel k;
    iss::IssPe pe{k, "DSP", cpu, gk, iss::IssPe::Config{kCycleTime, 2000}};

    DelayStats delays{cfg.frames};
    VocoderResult res;
    res.frames = cfg.frames;
    res.data_ok = true;
    res.min_snr_db = 0;  // functional check is checksum-based on this model

    std::size_t decoded_frame = 0;
    gk.set_host_notify([&](std::int32_t code, std::int32_t value) {
        switch (code) {
            case kNotifyFrameReady:
                delays.ready[static_cast<std::size_t>(value)] = k.now();
                break;
            case kNotifyFrameDecoded:
                decoded_frame = static_cast<std::size_t>(value);
                delays.done[decoded_frame] = k.now();
                break;
            case kNotifyChecksum:
                res.data_ok = res.data_ok &&
                              static_cast<std::uint32_t>(value) ==
                                  frame_checksum(input[decoded_frame]);
                break;
            default:
                SLM_ASSERT(false, "unexpected guest notify code");
        }
    });

    k.spawn("audio_port", [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                k.waitfor(kSubframePeriod);
                const Subframe sf = subframe_of(input[f], s);
                for (int i = 0; i < kSubframeSamples; ++i) {
                    cpu.store(static_cast<std::uint32_t>(kMicRxAddr + i),
                              sf.samples[static_cast<std::size_t>(i)]);
                }
                pe.post_irq(kSemSubframe);
            }
        }
    });

    const WallClock wall;
    k.run();
    res.wall_seconds = wall.seconds();
    res.sim_duration = k.now();
    res.context_switches = gk.stats().context_switches;
    delays.fill(res);
    res.model_loc = img.listing_lines;
    SLM_ASSERT(gk.all_exited(), "guest tasks did not finish");
    return res;
}

}  // namespace slm::vocoder
