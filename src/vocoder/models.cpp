#include "vocoder/models.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <vector>

#include "arch/arch.hpp"
#include "iss/cpu.hpp"
#include "iss/guest_os.hpp"
#include "refine/refiner.hpp"
#include "refine/vocoder_spec.hpp"
#include "rtos/os_channels.hpp"
#include "sim/assert.hpp"
#include "sim/channels.hpp"
#include "sim/kernel.hpp"
#include "vocoder/codec.hpp"
#include "vocoder/iss_gen.hpp"
#include "vocoder/timing.hpp"

namespace slm::vocoder {

namespace {

constexpr int kSubframeSamples = kFrameSamples / kSubframesPerFrame;

struct Subframe {
    std::array<std::int32_t, kSubframeSamples> samples{};
};

Subframe subframe_of(const Frame& f, int idx) {
    Subframe sf;
    for (int i = 0; i < kSubframeSamples; ++i) {
        sf.samples[static_cast<std::size_t>(i)] =
            f.samples[static_cast<std::size_t>(idx * kSubframeSamples + i)];
    }
    return sf;
}

std::vector<Frame> make_input(const VocoderConfig& cfg) {
    SpeechSource src{cfg.seed};
    std::vector<Frame> frames;
    frames.reserve(cfg.frames);
    for (std::size_t i = 0; i < cfg.frames; ++i) {
        frames.push_back(src.next_frame());
    }
    return frames;
}

struct DelayStats {
    std::vector<SimTime> ready;
    std::vector<SimTime> done;

    explicit DelayStats(std::size_t n) : ready(n), done(n) {}

    void fill(VocoderResult& r) const {
        SimTime total, worst;
        for (std::size_t i = 0; i < done.size(); ++i) {
            const SimTime d = done[i] - ready[i];
            total += d;
            worst = std::max(worst, d);
        }
        r.avg_transcoding_delay = done.empty() ? SimTime{} : total / done.size();
        r.max_transcoding_delay = worst;
    }
};

/// Lines of the refined (architecture-level) vocoder model source.
int refined_spec_lines() {
    refine::RefineConfig rc;
    rc.os_owner = "DspPe";
    rc.tasks["Coder"] = refine::TaskSpec{"APERIODIC", 0, kEncodeWcetCycles};
    rc.tasks["Decoder"] = refine::TaskSpec{"APERIODIC", 0, kDecodeWcetCycles};
    rc.tasks["BusDriver"] = refine::TaskSpec{"APERIODIC", 0, kSubframeCopyWcetCycles};
    const refine::RefineResult r = refine::Refiner{rc}.refine(refine::kVocoderSpec);
    SLM_ASSERT(r.ok(), "vocoder spec refinement failed");
    return r.report.lines_total + r.report.lines_added;
}

int spec_lines() {
    return static_cast<int>(
        std::count(refine::kVocoderSpec.begin(), refine::kVocoderSpec.end(), '\n'));
}

class WallClock {
public:
    WallClock() : start_(std::chrono::steady_clock::now()) {}
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

}  // namespace

rtos::RtosConfig VocoderConfig::default_rtos_config() {
    rtos::RtosConfig rc;
    rc.cpu_name = "DSP";
    rc.policy = rtos::SchedPolicy::Priority;
    rc.context_switch_overhead = microseconds(100);
    return rc;
}

// ---- unscheduled specification model ----

VocoderResult run_vocoder_unscheduled(const VocoderConfig& cfg) {
    const std::vector<Frame> input = make_input(cfg);
    sim::Kernel k;
    arch::Bus bus{k, "audio_bus", arch::Bus::Config{SimTime::zero(), SimTime::zero()}};
    arch::BusLink<Subframe> link{k, bus, "audio"};
    sim::Semaphore sub_sem{k, 0, "sub_sem"};
    sim::Queue<Frame> frame_q{k, 0, "frame_q"};
    sim::Queue<EncodedFrame> bits_q{k, 0, "bits_q"};
    DelayStats delays{cfg.frames};
    VocoderResult res;
    res.frames = cfg.frames;
    res.min_snr_db = 1e9;
    res.data_ok = true;
    trace::TraceSink* rec = cfg.tracer;

    const auto exec = [&](const char* who, SimTime dt) {
        if (rec != nullptr) {
            rec->exec_begin(k.now(), "DSP", who);
        }
        k.waitfor(dt);
        if (rec != nullptr) {
            rec->exec_end(k.now(), "DSP", who);
        }
    };

    // Serial audio port: 4 sub-frame transfers per 20 ms frame.
    k.spawn("audio_port", [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                k.waitfor(kSubframePeriod);
                link.post(subframe_of(input[f], s), [&](SimTime dt) { k.waitfor(dt); });
            }
        }
    });

    // ISR generated as part of the bus driver (paper Fig. 3): semaphore signal.
    std::deque<SimTime> irq_times;
    k.spawn("ISR", [&] {
        for (;;) {
            k.wait(link.irq().event());
            if (rec != nullptr) {
                rec->irq(k.now(), "DSP", "audio");
            }
            irq_times.push_back(k.now());
            sub_sem.release();
        }
    });

    k.spawn("driver", [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            Frame cur;
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                sub_sem.acquire();
                Subframe sf;
                SLM_ASSERT(link.try_fetch(sf), "driver woke without data");
                const SimTime irq_at = irq_times.front();
                irq_times.pop_front();
                exec("driver", cycles_to_time(kSubframeCopyWcetCycles));
                res.max_input_latency =
                    std::max(res.max_input_latency, k.now() - irq_at);
                for (int i = 0; i < kSubframeSamples; ++i) {
                    cur.samples[static_cast<std::size_t>(s * kSubframeSamples + i)] =
                        sf.samples[static_cast<std::size_t>(i)];
                }
            }
            delays.ready[f] = k.now();
            frame_q.send(cur);
        }
    });

    k.spawn("encoder", [&] {
        Encoder enc;
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            const Frame fr = frame_q.receive();
            EncodedFrame e = enc.encode(fr);
            exec("encoder", cycles_to_time(kEncodeWcetCycles));
            bits_q.send(std::move(e));
        }
    });

    k.spawn("decoder", [&] {
        Decoder dec;
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            const EncodedFrame e = bits_q.receive();
            const Frame out = dec.decode(e);
            exec("decoder", cycles_to_time(kDecodeWcetCycles));
            delays.done[f] = k.now();
            res.data_ok = res.data_ok && e.checksum == frame_checksum(input[f]);
            res.min_snr_db = std::min(res.min_snr_db, snr_db(input[f], out));
        }
    });

    const WallClock wall;
    k.run();
    res.wall_seconds = wall.seconds();
    res.sim_duration = k.now();
    res.context_switches = 0;
    delays.fill(res);
    res.model_loc = spec_lines();
    return res;
}

// ---- architecture model ----

VocoderResult run_vocoder_architecture(const VocoderConfig& cfg) {
    const std::vector<Frame> input = make_input(cfg);
    sim::Kernel k;
    rtos::RtosConfig rc = cfg.rtos;
    rc.cpu_name = "DSP";
    rc.tracer = cfg.tracer;
    arch::ProcessingElement pe{k, "DSP", rc};
    rtos::OsCore& os = pe.os();
    if (cfg.on_os) {
        cfg.on_os(os);
    }

    arch::Bus bus{k, "audio_bus", arch::Bus::Config{SimTime::zero(), SimTime::zero()}};
    arch::BusLink<Subframe> link{k, bus, "audio"};
    rtos::OsSemaphore sub_sem{os, 0, "sub_sem"};
    rtos::OsQueue<Frame> frame_q{os, 0, "frame_q"};
    rtos::OsQueue<EncodedFrame> bits_q{os, 0, "bits_q"};
    DelayStats delays{cfg.frames};
    VocoderResult res;
    res.frames = cfg.frames;
    res.min_snr_db = 1e9;
    res.data_ok = true;

    k.spawn("audio_port", [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                k.waitfor(kSubframePeriod);
                link.post(subframe_of(input[f], s), [&](SimTime dt) { k.waitfor(dt); });
            }
        }
    });

    std::deque<SimTime> irq_times;
    pe.attach_isr(link.irq(), [&] {
        irq_times.push_back(k.now());
        sub_sem.release();
    });

    pe.add_task("driver", kDriverPriority, [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            Frame cur;
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                sub_sem.acquire();
                Subframe sf;
                SLM_ASSERT(link.try_fetch(sf), "driver woke without data");
                const SimTime irq_at = irq_times.front();
                irq_times.pop_front();
                os.time_wait(cycles_to_time(kSubframeCopyWcetCycles));
                res.max_input_latency =
                    std::max(res.max_input_latency, k.now() - irq_at);
                for (int i = 0; i < kSubframeSamples; ++i) {
                    cur.samples[static_cast<std::size_t>(s * kSubframeSamples + i)] =
                        sf.samples[static_cast<std::size_t>(i)];
                }
            }
            delays.ready[f] = k.now();
            frame_q.send(cur);
        }
    });

    pe.add_task("encoder", kEncoderPriority, [&] {
        Encoder enc;
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            const Frame fr = frame_q.receive();
            EncodedFrame e = enc.encode(fr);
            os.time_wait(cycles_to_time(kEncodeWcetCycles));
            bits_q.send(std::move(e));
        }
    });

    pe.add_task("decoder", kDecoderPriority, [&] {
        Decoder dec;
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            const EncodedFrame e = bits_q.receive();
            const Frame out = dec.decode(e);
            os.time_wait(cycles_to_time(kDecodeWcetCycles));
            delays.done[f] = k.now();
            res.data_ok = res.data_ok && e.checksum == frame_checksum(input[f]);
            res.min_snr_db = std::min(res.min_snr_db, snr_db(input[f], out));
        }
    });

    pe.start();
    const WallClock wall;
    k.run();
    res.wall_seconds = wall.seconds();
    res.sim_duration = k.now();
    res.context_switches = os.stats().context_switches;
    delays.fill(res);
    res.model_loc = refined_spec_lines();
    return res;
}

// ---- two-PE architecture model ----

TwoPeResult run_vocoder_two_pe(const VocoderConfig& cfg) {
    const std::vector<Frame> input = make_input(cfg);
    sim::Kernel k;

    rtos::RtosConfig rc0 = cfg.rtos;
    rtos::RtosConfig rc1 = cfg.rtos;
    rc0.tracer = cfg.tracer;
    rc1.tracer = cfg.tracer;
    arch::ProcessingElement pe0{k, "DSP0", rc0};
    arch::ProcessingElement pe1{k, "DSP1", rc1};
    if (cfg.on_os) {
        cfg.on_os(pe0.os());
        cfg.on_os(pe1.os());
    }

    // Audio input to DSP0 (ideal link, as in the single-PE model) and an
    // inter-PE system bus carrying the 244-byte encoded frames.
    arch::Bus audio_bus{k, "audio_bus", arch::Bus::Config{SimTime::zero(), SimTime::zero()}};
    arch::BusLink<Subframe> audio{k, audio_bus, "audio"};
    arch::Bus sys_bus{k, "sys_bus", arch::Bus::Config{microseconds(1), nanoseconds(50)}};
    arch::BusLink<EncodedFrame> bits_link{k, sys_bus, "bits", 244};

    rtos::OsSemaphore sub_sem{pe0.os(), 0, "sub_sem"};
    rtos::OsQueue<Frame> frame_q{pe0.os(), 0, "frame_q"};
    rtos::OsSemaphore bits_sem{pe1.os(), 0, "bits_sem"};

    DelayStats delays{cfg.frames};
    TwoPeResult two{};
    VocoderResult& res = two.overall;
    res.frames = cfg.frames;
    res.min_snr_db = 1e9;
    res.data_ok = true;

    k.spawn("audio_port", [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                k.waitfor(kSubframePeriod);
                audio.post(subframe_of(input[f], s), [&](SimTime dt) { k.waitfor(dt); });
            }
        }
    });

    pe0.attach_isr(audio.irq(), [&] { sub_sem.release(); });
    pe0.add_task("driver", kDriverPriority, [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            Frame cur;
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                sub_sem.acquire();
                Subframe sf;
                SLM_ASSERT(audio.try_fetch(sf), "driver woke without data");
                pe0.os().time_wait(cycles_to_time(kSubframeCopyWcetCycles));
                for (int i = 0; i < kSubframeSamples; ++i) {
                    cur.samples[static_cast<std::size_t>(s * kSubframeSamples + i)] =
                        sf.samples[static_cast<std::size_t>(i)];
                }
            }
            delays.ready[f] = k.now();
            frame_q.send(cur);
        }
    });

    pe0.add_task("encoder", kEncoderPriority, [&] {
        Encoder enc;
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            const Frame fr = frame_q.receive();
            EncodedFrame e = enc.encode(fr);
            pe0.os().time_wait(cycles_to_time(kEncodeWcetCycles));
            // The bus transfer is executed (and its time charged) by the
            // encoder task acting as bus master.
            bits_link.post(std::move(e), [&](SimTime dt) { pe0.os().time_wait(dt); });
        }
    });

    pe1.attach_isr(bits_link.irq(), [&] { bits_sem.release(); });
    pe1.add_task("decoder", kDriverPriority, [&] {
        Decoder dec;
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            bits_sem.acquire();
            EncodedFrame e;
            SLM_ASSERT(bits_link.try_fetch(e), "decoder woke without data");
            const Frame out = dec.decode(e);
            pe1.os().time_wait(cycles_to_time(kDecodeWcetCycles));
            delays.done[f] = k.now();
            res.data_ok = res.data_ok && e.checksum == frame_checksum(input[f]);
            res.min_snr_db = std::min(res.min_snr_db, snr_db(input[f], out));
        }
    });

    pe0.start();
    pe1.start();
    const WallClock wall;
    k.run();
    res.wall_seconds = wall.seconds();
    res.sim_duration = k.now();
    res.context_switches =
        pe0.os().stats().context_switches + pe1.os().stats().context_switches;
    delays.fill(res);
    res.model_loc = refined_spec_lines();
    two.pe0_busy = pe0.os().busy_time();
    two.pe1_busy = pe1.os().busy_time();
    two.bus_transfers = sys_bus.transfers();
    two.bus_busy = sys_bus.busy_time();
    return two;
}

// ---- implementation model ----

VocoderResult run_vocoder_implementation(const VocoderConfig& cfg) {
    const std::vector<Frame> input = make_input(cfg);
    const GuestImage img = build_vocoder_guest(cfg.frames);

    iss::Cpu cpu{img.program.code, 65536};
    iss::GuestKernel gk{cpu};
    gk.sem_init(kSemSubframe, 0);
    gk.sem_init(kSemFrame, 0);
    gk.sem_init(kSemBits, 0);
    gk.create_task("driver", kDriverPriority, img.driver_entry, 60000);
    gk.create_task("encoder", kEncoderPriority, img.encoder_entry, 61000);
    gk.create_task("decoder", kDecoderPriority, img.decoder_entry, 62000);

    sim::Kernel k;
    iss::IssPe pe{k, "DSP", cpu, gk, iss::IssPe::Config{kCycleTime, 2000}};

    DelayStats delays{cfg.frames};
    VocoderResult res;
    res.frames = cfg.frames;
    res.data_ok = true;
    res.min_snr_db = 0;  // functional check is checksum-based on this model

    std::size_t decoded_frame = 0;
    gk.set_host_notify([&](std::int32_t code, std::int32_t value) {
        switch (code) {
            case kNotifyFrameReady:
                delays.ready[static_cast<std::size_t>(value)] = k.now();
                break;
            case kNotifyFrameDecoded:
                decoded_frame = static_cast<std::size_t>(value);
                delays.done[decoded_frame] = k.now();
                break;
            case kNotifyChecksum:
                res.data_ok = res.data_ok &&
                              static_cast<std::uint32_t>(value) ==
                                  frame_checksum(input[decoded_frame]);
                break;
            default:
                SLM_ASSERT(false, "unexpected guest notify code");
        }
    });

    k.spawn("audio_port", [&] {
        for (std::size_t f = 0; f < cfg.frames; ++f) {
            for (int s = 0; s < kSubframesPerFrame; ++s) {
                k.waitfor(kSubframePeriod);
                const Subframe sf = subframe_of(input[f], s);
                for (int i = 0; i < kSubframeSamples; ++i) {
                    cpu.store(static_cast<std::uint32_t>(kMicRxAddr + i),
                              sf.samples[static_cast<std::size_t>(i)]);
                }
                pe.post_irq(kSemSubframe);
            }
        }
    });

    const WallClock wall;
    k.run();
    res.wall_seconds = wall.seconds();
    res.sim_duration = k.now();
    res.context_switches = gk.stats().context_switches;
    delays.fill(res);
    res.model_loc = img.listing_lines;
    SLM_ASSERT(gk.all_exited(), "guest tasks did not finish");
    return res;
}

}  // namespace slm::vocoder
