#pragma once

#include <cstdint>
#include <functional>

#include "rtos/rtos.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace slm::vocoder {

/// Parameters shared by the three vocoder system models.
struct VocoderConfig {
    std::size_t frames = 50;
    std::uint32_t seed = 1;
    /// Any trace sink (TraceRecorder for derived views, obs::BinaryTraceSink
    /// for hot-path recording).
    trace::TraceSink* tracer = nullptr;
    /// Architecture model only: scheduling configuration. The vocoder default
    /// adds a conservative 100 us context-switch annotation (the abstract
    /// model errs pessimistic, which is what puts the architecture estimate
    /// above the implementation measurement in Table 1).
    rtos::RtosConfig rtos = default_rtos_config();
    /// Architecture models only: invoked with each OS core right after
    /// construction, before any task exists — the hook for attaching
    /// observers such as obs::RtosAnalytics (run_vocoder_two_pe calls it once
    /// per PE).
    std::function<void(rtos::OsCore&)> on_os;

    [[nodiscard]] static rtos::RtosConfig default_rtos_config();
};

/// Measured outcomes of one vocoder simulation (one column of Table 1).
struct VocoderResult {
    std::size_t frames = 0;
    SimTime sim_duration;                 ///< simulated time span
    double wall_seconds = 0;              ///< host wall-clock of the simulation
    std::uint64_t context_switches = 0;   ///< 0 / RTOS-model / guest-kernel
    SimTime avg_transcoding_delay;        ///< frame-ready -> decoded, average
    SimTime max_transcoding_delay;
    double min_snr_db = 0;                ///< host models; 0 for implementation
    bool data_ok = false;                 ///< checksums/integrity verified
    int model_loc = 0;                    ///< artifact size (Table 1 LoC row)
    /// Worst-case latency from a sub-frame interrupt to the driver finishing
    /// its copy. This is the metric bounded by the delay-model granularity
    /// (paper §4.3); 0 for the implementation model (measured on host models).
    SimTime max_input_latency;
};

/// Unscheduled specification model: driver, encoder, and decoder behaviors run
/// truly concurrently on the SLDL kernel with WCET delay annotations.
[[nodiscard]] VocoderResult run_vocoder_unscheduled(const VocoderConfig& cfg);

/// Architecture model: the behaviors refined into prioritized tasks on one
/// RTOS-model instance (driver > decoder > encoder), ISR-driven input.
[[nodiscard]] VocoderResult run_vocoder_architecture(const VocoderConfig& cfg);

/// Implementation model: generated SLM32 assembly on the instruction-set
/// simulator under the custom guest kernel; timing from executed cycles.
[[nodiscard]] VocoderResult run_vocoder_implementation(const VocoderConfig& cfg);

/// Two-PE architecture-model mapping (design-space exploration of the paper's
/// Fig. 1 flow): driver+encoder on DSP0, decoder on DSP1, encoded frames
/// crossing an arbitrated bus with ISR-signaled reception. busy-time split
/// and delay can be compared against the single-PE mapping.
struct TwoPeResult {
    VocoderResult overall;     ///< context_switches summed over both PEs
    SimTime pe0_busy;          ///< DSP0 (driver + encoder) busy time
    SimTime pe1_busy;          ///< DSP1 (decoder) busy time
    std::uint64_t bus_transfers = 0;
    SimTime bus_busy;
};
[[nodiscard]] TwoPeResult run_vocoder_two_pe(const VocoderConfig& cfg);

}  // namespace slm::vocoder
