#include "vocoder/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace slm::vocoder {

namespace {

constexpr std::int32_t kPreemphQ15 = 29491;  // alpha ~= 0.9

/// Quarter-wave-free integer sine: Q14 table, 256 entries per period.
std::int32_t sin_q14(std::uint32_t phase) {
    static const auto table = [] {
        std::array<std::int16_t, 256> t{};
        for (int i = 0; i < 256; ++i) {
            t[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
                16383.0 * std::sin(2.0 * 3.14159265358979 * i / 256.0));
        }
        return t;
    }();
    return table[(phase >> 8U) & 0xFFU];
}

}  // namespace

SpeechSource::SpeechSource(std::uint32_t seed) : lcg_(seed == 0 ? 1 : seed) {}

std::int32_t SpeechSource::noise() {
    lcg_ = lcg_ * 1664525u + 1013904223u;
    return static_cast<std::int32_t>(lcg_ >> 20U) - 2048;  // ~[-2048, 2047]
}

Frame SpeechSource::next_frame() {
    Frame f;
    for (int i = 0; i < kFrameSamples; ++i) {
        // Slowly wandering formants: increments modulated by frame count.
        const std::uint32_t inc1 = 700 + static_cast<std::uint32_t>((n_ / 320) % 400);
        const std::uint32_t inc2 = 2100 + static_cast<std::uint32_t>((n_ / 480) % 700);
        phase1_ += inc1;
        phase2_ += inc2;
        const std::int32_t s =
            (sin_q14(phase1_) * 6) / 8 + (sin_q14(phase2_) * 3) / 8 + noise();
        f.samples[static_cast<std::size_t>(i)] = std::clamp(s, -32768, 32767);
        ++n_;
    }
    return f;
}

std::uint32_t frame_checksum(const Frame& f) {
    std::uint32_t h = 2166136261u;  // FNV-1a over the sample words
    for (const std::int32_t s : f.samples) {
        h ^= static_cast<std::uint32_t>(s);
        h *= 16777619u;
    }
    return h;
}

EncodedFrame Encoder::encode(const Frame& in) {
    EncodedFrame out;
    out.checksum = frame_checksum(in);

    // 1. Pre-emphasis (Q15 one-tap high-pass).
    std::array<std::int32_t, kFrameSamples> x{};
    std::int32_t prev = pre_state_;
    for (int n = 0; n < kFrameSamples; ++n) {
        const std::int32_t s = in.samples[static_cast<std::size_t>(n)];
        x[static_cast<std::size_t>(n)] = s - ((kPreemphQ15 * prev) >> 15);
        prev = s;
        ops_.macs += 1;
        ops_.loads += 1;
        ops_.stores += 1;
    }
    pre_state_ = prev;

    // 2. Autocorrelation (64-bit accumulation).
    std::array<double, kLpcOrder + 1> r{};
    for (int k = 0; k <= kLpcOrder; ++k) {
        std::int64_t acc = 0;
        for (int n = k; n < kFrameSamples; ++n) {
            acc += static_cast<std::int64_t>(x[static_cast<std::size_t>(n)]) *
                   x[static_cast<std::size_t>(n - k)];
            ops_.macs += 1;
            ops_.loads += 2;
        }
        r[static_cast<std::size_t>(k)] = static_cast<double>(acc);
    }
    // Conditioning: white-noise correction keeps Levinson well-posed on
    // silent/degenerate frames.
    r[0] = r[0] * 1.001 + 1.0;

    // 3. Levinson-Durbin recursion -> prediction coefficients a[1..p].
    std::array<double, kLpcOrder + 1> a{};
    double err = r[0];
    for (int i = 1; i <= kLpcOrder; ++i) {
        double acc = r[static_cast<std::size_t>(i)];
        for (int j = 1; j < i; ++j) {
            acc -= a[static_cast<std::size_t>(j)] * r[static_cast<std::size_t>(i - j)];
        }
        const double k_i = acc / err;
        std::array<double, kLpcOrder + 1> next = a;
        next[static_cast<std::size_t>(i)] = k_i;
        for (int j = 1; j < i; ++j) {
            next[static_cast<std::size_t>(j)] =
                a[static_cast<std::size_t>(j)] -
                k_i * a[static_cast<std::size_t>(i - j)];
        }
        a = next;
        err *= (1.0 - k_i * k_i);
        if (err <= 0) {
            err = 1.0;
        }
        ops_.macs += static_cast<std::uint64_t>(2 * i);
    }

    // 4. Quantize to Q12 (shared verbatim with the decoder).
    for (int i = 1; i <= kLpcOrder; ++i) {
        const double q = std::round(a[static_cast<std::size_t>(i)] * 4096.0);
        out.lpc_q12[static_cast<std::size_t>(i - 1)] =
            std::clamp(static_cast<std::int32_t>(q), -32767, 32767);
    }

    // 5. Short-term residual with inter-frame history.
    std::array<std::int32_t, kFrameSamples> e{};
    std::int32_t emax = 0;
    for (int n = 0; n < kFrameSamples; ++n) {
        std::int64_t pred = 0;
        for (int i = 1; i <= kLpcOrder; ++i) {
            const int idx = n - i;
            const std::int32_t past =
                idx >= 0 ? x[static_cast<std::size_t>(idx)]
                         : hist_[static_cast<std::size_t>(kLpcOrder + idx)];
            pred += static_cast<std::int64_t>(
                        out.lpc_q12[static_cast<std::size_t>(i - 1)]) *
                    past;
            ops_.macs += 1;
            ops_.loads += 2;
        }
        e[static_cast<std::size_t>(n)] =
            x[static_cast<std::size_t>(n)] - static_cast<std::int32_t>(pred >> 12);
        emax = std::max(emax, std::abs(e[static_cast<std::size_t>(n)]));
        ops_.stores += 1;
    }

    // 6. Block-scale the residual into kResidualBits signed values.
    int shift = 0;
    while ((emax >> shift) > 127) {
        ++shift;
    }
    out.shift = shift;
    for (int n = 0; n < kFrameSamples; ++n) {
        out.residual[static_cast<std::size_t>(n)] = static_cast<std::int8_t>(
            std::clamp(e[static_cast<std::size_t>(n)] >> shift, -128, 127));
        ops_.stores += 1;
    }

    // 7. Roll the analysis history forward.
    for (int i = 0; i < kLpcOrder; ++i) {
        hist_[static_cast<std::size_t>(i)] =
            x[static_cast<std::size_t>(kFrameSamples - kLpcOrder + i)];
    }
    return out;
}

Frame Decoder::decode(const EncodedFrame& in) {
    Frame out;
    std::array<std::int32_t, kFrameSamples> x{};
    for (int n = 0; n < kFrameSamples; ++n) {
        const std::int32_t e =
            static_cast<std::int32_t>(in.residual[static_cast<std::size_t>(n)])
            << in.shift;
        std::int64_t pred = 0;
        for (int i = 1; i <= kLpcOrder; ++i) {
            const int idx = n - i;
            const std::int32_t past =
                idx >= 0 ? x[static_cast<std::size_t>(idx)]
                         : hist_[static_cast<std::size_t>(kLpcOrder + idx)];
            pred += static_cast<std::int64_t>(
                        in.lpc_q12[static_cast<std::size_t>(i - 1)]) *
                    past;
            ops_.macs += 1;
            ops_.loads += 2;
        }
        x[static_cast<std::size_t>(n)] = std::clamp(
            e + static_cast<std::int32_t>(pred >> 12), -(1 << 20), (1 << 20) - 1);
        ops_.stores += 1;
    }
    // De-emphasis (inverse of the encoder's one-tap high-pass).
    std::int32_t prev = de_state_;
    for (int n = 0; n < kFrameSamples; ++n) {
        const std::int32_t s =
            x[static_cast<std::size_t>(n)] + ((kPreemphQ15 * prev) >> 15);
        const std::int32_t clamped = std::clamp(s, -32768, 32767);
        out.samples[static_cast<std::size_t>(n)] = clamped;
        prev = clamped;
        ops_.macs += 1;
        ops_.stores += 1;
    }
    de_state_ = prev;
    for (int i = 0; i < kLpcOrder; ++i) {
        hist_[static_cast<std::size_t>(i)] =
            x[static_cast<std::size_t>(kFrameSamples - kLpcOrder + i)];
    }
    return out;
}

double snr_db(const Frame& ref, const Frame& out) {
    double sig = 0, err = 0;
    for (int n = 0; n < kFrameSamples; ++n) {
        const double s = ref.samples[static_cast<std::size_t>(n)];
        const double d = s - out.samples[static_cast<std::size_t>(n)];
        sig += s * s;
        err += d * d;
    }
    if (err == 0) {
        return 120.0;
    }
    return 10.0 * std::log10(sig / err);
}

}  // namespace slm::vocoder
