#pragma once

#include <array>
#include <cstdint>

namespace slm::vocoder {

/// A deterministic LPC-based frame codec standing in for the paper's GSM
/// vocoder (see DESIGN.md substitution table). 160-sample frames (20 ms at
/// 8 kHz), 10th-order short-term prediction, quantized residual. All integer/
/// fixed-point state is deterministic; the Levinson recursion uses doubles
/// internally but quantizes coefficients to Q12, and the encoder and decoder
/// share the quantized coefficients, so reconstruction error comes only from
/// residual quantization.
inline constexpr int kFrameSamples = 160;
inline constexpr int kLpcOrder = 10;
inline constexpr int kResidualBits = 8;

struct Frame {
    std::array<std::int32_t, kFrameSamples> samples{};  ///< 16-bit range PCM

    friend bool operator==(const Frame&, const Frame&) = default;
};

struct EncodedFrame {
    std::array<std::int32_t, kLpcOrder> lpc_q12{};            ///< Q12 coefficients
    std::array<std::int8_t, kFrameSamples> residual{};        ///< quantized excitation
    int shift = 0;                                            ///< residual scale
    std::uint32_t checksum = 0;                               ///< integrity tag
};

/// Deterministic synthetic speech: two slowly wandering "formant" tones plus
/// low-level noise from an LCG. Same seed -> bit-identical sample stream.
class SpeechSource {
public:
    explicit SpeechSource(std::uint32_t seed = 1);

    [[nodiscard]] Frame next_frame();

private:
    [[nodiscard]] std::int32_t noise();

    std::uint32_t lcg_;
    std::uint32_t phase1_ = 0;
    std::uint32_t phase2_ = 0;
    std::uint64_t n_ = 0;
};

/// Operation counts of one encode/decode, used by the timing model and by the
/// tests that pin the workload's computational shape.
struct OpCounts {
    std::uint64_t macs = 0;
    std::uint64_t adds = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

class Encoder {
public:
    [[nodiscard]] EncodedFrame encode(const Frame& in);

    [[nodiscard]] const OpCounts& op_counts() const { return ops_; }

private:
    std::int32_t pre_state_ = 0;  ///< pre-emphasis filter memory
    std::array<std::int32_t, kLpcOrder> hist_{};  ///< inter-frame sample history
    OpCounts ops_;
};

class Decoder {
public:
    [[nodiscard]] Frame decode(const EncodedFrame& in);

    [[nodiscard]] const OpCounts& op_counts() const { return ops_; }

private:
    std::array<std::int32_t, kLpcOrder> hist_{};  ///< synthesis filter memory
    std::int32_t de_state_ = 0;                   ///< de-emphasis filter memory
    OpCounts ops_;
};

/// Frame checksum used for end-to-end data-integrity checks (also computed by
/// the guest program in the implementation model).
[[nodiscard]] std::uint32_t frame_checksum(const Frame& f);

/// Signal-to-noise ratio of `out` against `ref`, in dB.
[[nodiscard]] double snr_db(const Frame& ref, const Frame& out);

}  // namespace slm::vocoder
