#include "vocoder/iss_gen.hpp"

#include <algorithm>
#include <sstream>

#include "sim/assert.hpp"
#include "vocoder/codec.hpp"
#include "vocoder/timing.hpp"

namespace slm::vocoder {

namespace {

/// Emit a calibrated compute block of exactly `cycles` cycles: repeated
/// fully-unrolled MAC passes over the frame buffer (the DSP inner-loop shape),
/// a 3-cycle trim loop, and nop padding. Register use: r3, r5, r6, r8.
void emit_burn(std::ostringstream& os, const std::string& tag, std::uint64_t cycles) {
    // Pass structure:  ldi r3 (1) + ldi r6 (1) + P*(160*(3+4) + 1 + 2) - 1
    constexpr std::uint64_t kPassCost = 160 * 7 + 3;  // 1123
    std::uint64_t base = 0;
    std::uint64_t passes = 0;
    if (cycles >= kPassCost + 2) {
        passes = (cycles - 1) / kPassCost;
        base = passes * kPassCost + 1;
        if (base > cycles) {  // guard: trim passes until we fit
            --passes;
            base = passes * kPassCost + 1;
        }
    }
    std::uint64_t rem = cycles - base;
    if (passes > 0) {
        os << "  ldi r3, " << kFrameBufAddr << "\n";
        os << "  ldi r6, " << passes << "\n";
        os << tag << "_pass:\n";
        for (int i = 0; i < kFrameSamples; ++i) {
            os << "  ld r5, r3, " << i << "\n";
            os << "  mac r8, r5, r5\n";
        }
        os << "  addi r6, r6, -1\n";
        os << "  bne r6, r0, " << tag << "_pass\n";
    }
    const std::uint64_t trim = rem / 3;
    rem -= trim * 3;
    if (trim > 0) {
        os << "  ldi r6, " << trim << "\n";
        os << tag << "_trim:\n";
        os << "  addi r6, r6, -1\n";
        os << "  bne r6, r0, " << tag << "_trim\n";
    }
    for (std::uint64_t i = 0; i < rem; ++i) {
        os << "  nop\n";
    }
}

}  // namespace

GuestImage build_vocoder_guest(std::size_t frames) {
    SLM_ASSERT(frames > 0, "need at least one frame");
    std::ostringstream os;
    os << "; SLM32 vocoder guest image (generated)\n";
    os << "; tasks: input driver, encoder, decoder on the custom guest kernel\n";

    // ---- input driver ----
    // Fixed per-subframe work (syscalls, address setup, 40-word copy, loop
    // bookkeeping) is ~465 cycles; the burn models the rest of the real
    // driver's per-subframe processing (deinterleave, scaling).
    const std::uint64_t drv_fixed = 465;
    const std::uint64_t drv_burn = actual_cycles(kSubframeCopyWcetCycles) - drv_fixed;
    os << "driver:\n";
    os << "  ldi r12, " << frames * static_cast<std::size_t>(kSubframesPerFrame) << "\n";
    os << "  ldi r10, 0\n";
    os << "  ldi r13, 0\n";
    os << "drv_sub:\n";
    os << "  ldi r1, " << kSemSubframe << "\n";
    os << "  sys 3\n";
    os << "  ldi r5, 40\n";
    os << "  mul r4, r10, r5\n";
    os << "  addi r4, r4, " << kFrameBufAddr << "\n";
    os << "  ldi r3, " << kMicRxAddr << "\n";
    os << "  ldi r6, 40\n";
    os << "drv_copy:\n";
    os << "  ld r5, r3, 0\n";
    os << "  st r4, 0, r5\n";
    os << "  addi r3, r3, 1\n";
    os << "  addi r4, r4, 1\n";
    os << "  addi r6, r6, -1\n";
    os << "  bne r6, r0, drv_copy\n";
    emit_burn(os, "drv", drv_burn);
    os << "  addi r10, r10, 1\n";
    os << "  ldi r5, " << kSubframesPerFrame << "\n";
    os << "  blt r10, r5, drv_next\n";
    os << "  ldi r1, " << kSemFrame << "\n";
    os << "  sys 4\n";
    os << "  ldi r1, " << kNotifyFrameReady << "\n";
    os << "  mov r2, r13\n";
    os << "  sys 5\n";
    os << "  addi r13, r13, 1\n";
    os << "  ldi r10, 0\n";
    os << "drv_next:\n";
    os << "  addi r12, r12, -1\n";
    os << "  bne r12, r0, drv_sub\n";
    os << "  sys 2\n";

    // ---- encoder ----
    // Fixed per-frame work: sem_wait (11) + checksum setup (4) + FNV loop over
    // 160 samples (160*12 - 1) + store (3) + sem_post (11) + loop (3) = 1951.
    const std::uint64_t enc_fixed = 1951;
    const std::uint64_t enc_burn = actual_cycles(kEncodeWcetCycles) - enc_fixed;
    os << "encoder:\n";
    os << "  ldi r9, " << frames << "\n";
    os << "enc_frame:\n";
    os << "  ldi r1, " << kSemFrame << "\n";
    os << "  sys 3\n";
    os << "  ldi r2, " << static_cast<std::int32_t>(2166136261u) << "\n";
    os << "  ldi r3, " << kFrameBufAddr << "\n";
    os << "  ldi r4, " << kFrameSamples << "\n";
    os << "  ldi r7, 16777619\n";
    os << "enc_csum:\n";
    os << "  ld r5, r3, 0\n";
    os << "  xor r2, r2, r5\n";
    os << "  mul r2, r2, r7\n";
    os << "  addi r3, r3, 1\n";
    os << "  addi r4, r4, -1\n";
    os << "  bne r4, r0, enc_csum\n";
    os << "  st r0, " << kBitsBufAddr << ", r2\n";
    emit_burn(os, "enc", enc_burn);
    os << "  ldi r1, " << kSemBits << "\n";
    os << "  sys 4\n";
    os << "  addi r9, r9, -1\n";
    os << "  bne r9, r0, enc_frame\n";
    os << "  sys 2\n";

    // ---- decoder ----
    // Fixed per-frame work: sem_wait (11) + decoded notify (12) + checksum
    // notify (14) + loop bookkeeping (4) = 41.
    const std::uint64_t dec_fixed = 41;
    const std::uint64_t dec_burn = actual_cycles(kDecodeWcetCycles) - dec_fixed;
    os << "decoder:\n";
    os << "  ldi r9, " << frames << "\n";
    os << "  ldi r11, 0\n";
    os << "dec_frame:\n";
    os << "  ldi r1, " << kSemBits << "\n";
    os << "  sys 3\n";
    emit_burn(os, "dec", dec_burn);
    os << "  ldi r1, " << kNotifyFrameDecoded << "\n";
    os << "  mov r2, r11\n";
    os << "  sys 5\n";
    os << "  ldi r1, " << kNotifyChecksum << "\n";
    os << "  ld r2, r0, " << kBitsBufAddr << "\n";
    os << "  sys 5\n";
    os << "  addi r11, r11, 1\n";
    os << "  addi r9, r9, -1\n";
    os << "  bne r9, r0, dec_frame\n";
    os << "  sys 2\n";

    GuestImage img;
    img.listing = os.str();
    img.listing_lines =
        static_cast<int>(std::count(img.listing.begin(), img.listing.end(), '\n'));
    const iss::AsmResult assembled = iss::assemble(img.listing);
    SLM_ASSERT(assembled.ok(), "generated vocoder guest assembly failed to assemble");
    img.program = assembled.program;
    img.driver_entry = img.program.label("driver");
    img.encoder_entry = img.program.label("encoder");
    img.decoder_entry = img.program.label("decoder");
    return img;
}

}  // namespace slm::vocoder
