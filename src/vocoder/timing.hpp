#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace slm::vocoder {

/// Timing calibration for the vocoder experiment (paper Table 1).
///
/// The paper's target is a Motorola DSP56600 running the GSM EFR codec; our
/// stand-in core (SLM32 at 100 MHz) is calibrated so that the per-frame
/// processing budgets land in the same regime: ~6.5 ms encode + ~3.2 ms decode
/// per 20 ms frame. These budgets represent the *full* EFR including the
/// codebook search our functional codec does not implement — the abstract
/// models annotate them as WCETs, while the implementation model executes a
/// calibrated instruction stream whose actual cycle count is ~7% below WCET
/// (a realistic WCET margin), which is what puts the measured implementation
/// delay below the architecture model's estimate, as in the paper.

inline constexpr std::uint64_t kCpuHz = 100'000'000;
inline constexpr SimTime kCycleTime = nanoseconds(10);

/// WCET annotations (used by the unscheduled and architecture models).
inline constexpr std::uint64_t kEncodeWcetCycles = 650'000;      ///< 6.50 ms
inline constexpr std::uint64_t kDecodeWcetCycles = 320'000;      ///< 3.20 ms
inline constexpr std::uint64_t kSubframeCopyWcetCycles = 60'000; ///< 0.60 ms

/// Actual-execution targets for the implementation model: WCET minus a 7%
/// engineering margin.
[[nodiscard]] constexpr std::uint64_t actual_cycles(std::uint64_t wcet) {
    return wcet - wcet * 7 / 100;
}

[[nodiscard]] constexpr SimTime cycles_to_time(std::uint64_t cycles) {
    return kCycleTime * cycles;
}

/// Frame cadence: 20 ms speech frames delivered as 4 sub-frame bus interrupts
/// 5 ms apart (the serial-audio-port DMA pattern); the input driver task
/// copies each sub-frame and releases the assembled frame to the encoder.
inline constexpr SimTime kFramePeriod = milliseconds(20);
inline constexpr int kSubframesPerFrame = 4;
inline constexpr SimTime kSubframePeriod{kFramePeriod.ns() / kSubframesPerFrame};

/// Task priorities on the DSP (smaller = higher): the input driver must never
/// lose samples, decoding is latency-critical, encoding fills the rest.
inline constexpr int kDriverPriority = 1;
inline constexpr int kDecoderPriority = 2;
inline constexpr int kEncoderPriority = 3;

}  // namespace slm::vocoder
