# Empty dependencies file for bench_tlm.
# This may be replaced when dependencies are built.
