file(REMOVE_RECURSE
  "CMakeFiles/bench_tlm.dir/bench_tlm.cpp.o"
  "CMakeFiles/bench_tlm.dir/bench_tlm.cpp.o.d"
  "bench_tlm"
  "bench_tlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
