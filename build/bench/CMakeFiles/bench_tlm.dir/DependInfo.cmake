
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_tlm.cpp" "bench/CMakeFiles/bench_tlm.dir/bench_tlm.cpp.o" "gcc" "bench/CMakeFiles/bench_tlm.dir/bench_tlm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/slm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/slm_rtos.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/slm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
