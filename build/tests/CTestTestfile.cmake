# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_time[1]_include.cmake")
include("/root/repo/build/tests/test_sim_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_sim_channels[1]_include.cmake")
include("/root/repo/build/tests/test_sim_stress[1]_include.cmake")
include("/root/repo/build/tests/test_rtos[1]_include.cmake")
include("/root/repo/build/tests/test_rtos_extras[1]_include.cmake")
include("/root/repo/build/tests/test_rtos_properties[1]_include.cmake")
include("/root/repo/build/tests/test_contracts[1]_include.cmake")
include("/root/repo/build/tests/test_os_channels[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_fig3_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_tlm[1]_include.cmake")
include("/root/repo/build/tests/test_refine[1]_include.cmake")
include("/root/repo/build/tests/test_iss[1]_include.cmake")
include("/root/repo/build/tests/test_iss_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_vocoder[1]_include.cmake")
include("/root/repo/build/tests/test_vocoder_properties[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
