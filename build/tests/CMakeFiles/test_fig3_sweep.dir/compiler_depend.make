# Empty compiler generated dependencies file for test_fig3_sweep.
# This may be replaced when dependencies are built.
