file(REMOVE_RECURSE
  "CMakeFiles/test_fig3_sweep.dir/test_fig3_sweep.cpp.o"
  "CMakeFiles/test_fig3_sweep.dir/test_fig3_sweep.cpp.o.d"
  "test_fig3_sweep"
  "test_fig3_sweep.pdb"
  "test_fig3_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig3_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
