file(REMOVE_RECURSE
  "CMakeFiles/test_rtos_extras.dir/test_rtos_extras.cpp.o"
  "CMakeFiles/test_rtos_extras.dir/test_rtos_extras.cpp.o.d"
  "test_rtos_extras"
  "test_rtos_extras.pdb"
  "test_rtos_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtos_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
