# Empty dependencies file for test_rtos_extras.
# This may be replaced when dependencies are built.
