# Empty dependencies file for test_os_channels.
# This may be replaced when dependencies are built.
