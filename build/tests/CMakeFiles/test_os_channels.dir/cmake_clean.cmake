file(REMOVE_RECURSE
  "CMakeFiles/test_os_channels.dir/test_os_channels.cpp.o"
  "CMakeFiles/test_os_channels.dir/test_os_channels.cpp.o.d"
  "test_os_channels"
  "test_os_channels.pdb"
  "test_os_channels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
