# Empty compiler generated dependencies file for test_rtos.
# This may be replaced when dependencies are built.
