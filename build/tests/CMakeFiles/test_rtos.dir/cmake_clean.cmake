file(REMOVE_RECURSE
  "CMakeFiles/test_rtos.dir/test_rtos.cpp.o"
  "CMakeFiles/test_rtos.dir/test_rtos.cpp.o.d"
  "test_rtos"
  "test_rtos.pdb"
  "test_rtos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
