file(REMOVE_RECURSE
  "CMakeFiles/test_vocoder_properties.dir/test_vocoder_properties.cpp.o"
  "CMakeFiles/test_vocoder_properties.dir/test_vocoder_properties.cpp.o.d"
  "test_vocoder_properties"
  "test_vocoder_properties.pdb"
  "test_vocoder_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vocoder_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
