# Empty compiler generated dependencies file for test_vocoder_properties.
# This may be replaced when dependencies are built.
