file(REMOVE_RECURSE
  "CMakeFiles/test_vocoder.dir/test_vocoder.cpp.o"
  "CMakeFiles/test_vocoder.dir/test_vocoder.cpp.o.d"
  "test_vocoder"
  "test_vocoder.pdb"
  "test_vocoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vocoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
