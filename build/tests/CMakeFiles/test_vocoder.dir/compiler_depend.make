# Empty compiler generated dependencies file for test_vocoder.
# This may be replaced when dependencies are built.
