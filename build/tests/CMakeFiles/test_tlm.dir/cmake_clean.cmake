file(REMOVE_RECURSE
  "CMakeFiles/test_tlm.dir/test_tlm.cpp.o"
  "CMakeFiles/test_tlm.dir/test_tlm.cpp.o.d"
  "test_tlm"
  "test_tlm.pdb"
  "test_tlm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
