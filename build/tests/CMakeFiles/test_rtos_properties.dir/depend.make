# Empty dependencies file for test_rtos_properties.
# This may be replaced when dependencies are built.
