file(REMOVE_RECURSE
  "CMakeFiles/test_rtos_properties.dir/test_rtos_properties.cpp.o"
  "CMakeFiles/test_rtos_properties.dir/test_rtos_properties.cpp.o.d"
  "test_rtos_properties"
  "test_rtos_properties.pdb"
  "test_rtos_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtos_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
