# Empty compiler generated dependencies file for test_sim_channels.
# This may be replaced when dependencies are built.
