file(REMOVE_RECURSE
  "CMakeFiles/test_sim_channels.dir/test_sim_channels.cpp.o"
  "CMakeFiles/test_sim_channels.dir/test_sim_channels.cpp.o.d"
  "test_sim_channels"
  "test_sim_channels.pdb"
  "test_sim_channels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
