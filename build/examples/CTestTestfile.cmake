# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;slm_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fig3_example "/root/repo/build/examples/fig3_example")
set_tests_properties(example_fig3_example PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;slm_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vocoder_demo "/root/repo/build/examples/vocoder_demo" "5")
set_tests_properties(example_vocoder_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;slm_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_pe_system "/root/repo/build/examples/multi_pe_system")
set_tests_properties(example_multi_pe_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;slm_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheduler_explorer "/root/repo/build/examples/scheduler_explorer")
set_tests_properties(example_scheduler_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;16;slm_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_refine_tool "/root/repo/build/examples/refine_tool" "--quiet")
set_tests_properties(example_refine_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;18;slm_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_engine_control "/root/repo/build/examples/engine_control")
set_tests_properties(example_engine_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;20;slm_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iss_playground "/root/repo/build/examples/iss_playground")
set_tests_properties(example_iss_playground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;21;slm_add_example;/root/repo/examples/CMakeLists.txt;0;")
