file(REMOVE_RECURSE
  "CMakeFiles/vocoder_demo.dir/vocoder_demo.cpp.o"
  "CMakeFiles/vocoder_demo.dir/vocoder_demo.cpp.o.d"
  "vocoder_demo"
  "vocoder_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vocoder_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
