# Empty dependencies file for vocoder_demo.
# This may be replaced when dependencies are built.
