# Empty compiler generated dependencies file for refine_tool.
# This may be replaced when dependencies are built.
