file(REMOVE_RECURSE
  "CMakeFiles/refine_tool.dir/refine_tool.cpp.o"
  "CMakeFiles/refine_tool.dir/refine_tool.cpp.o.d"
  "refine_tool"
  "refine_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refine_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
