file(REMOVE_RECURSE
  "CMakeFiles/iss_playground.dir/iss_playground.cpp.o"
  "CMakeFiles/iss_playground.dir/iss_playground.cpp.o.d"
  "iss_playground"
  "iss_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iss_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
