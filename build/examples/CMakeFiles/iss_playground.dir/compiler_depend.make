# Empty compiler generated dependencies file for iss_playground.
# This may be replaced when dependencies are built.
