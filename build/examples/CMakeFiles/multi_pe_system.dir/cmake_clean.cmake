file(REMOVE_RECURSE
  "CMakeFiles/multi_pe_system.dir/multi_pe_system.cpp.o"
  "CMakeFiles/multi_pe_system.dir/multi_pe_system.cpp.o.d"
  "multi_pe_system"
  "multi_pe_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_pe_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
