# Empty compiler generated dependencies file for multi_pe_system.
# This may be replaced when dependencies are built.
