# Empty dependencies file for scheduler_explorer.
# This may be replaced when dependencies are built.
