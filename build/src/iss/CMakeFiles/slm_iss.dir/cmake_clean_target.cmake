file(REMOVE_RECURSE
  "libslm_iss.a"
)
