file(REMOVE_RECURSE
  "CMakeFiles/slm_iss.dir/assembler.cpp.o"
  "CMakeFiles/slm_iss.dir/assembler.cpp.o.d"
  "CMakeFiles/slm_iss.dir/cpu.cpp.o"
  "CMakeFiles/slm_iss.dir/cpu.cpp.o.d"
  "CMakeFiles/slm_iss.dir/guest_os.cpp.o"
  "CMakeFiles/slm_iss.dir/guest_os.cpp.o.d"
  "CMakeFiles/slm_iss.dir/isa.cpp.o"
  "CMakeFiles/slm_iss.dir/isa.cpp.o.d"
  "libslm_iss.a"
  "libslm_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
