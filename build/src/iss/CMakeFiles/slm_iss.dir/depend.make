# Empty dependencies file for slm_iss.
# This may be replaced when dependencies are built.
