# Empty compiler generated dependencies file for slm_analysis.
# This may be replaced when dependencies are built.
