file(REMOVE_RECURSE
  "libslm_analysis.a"
)
