file(REMOVE_RECURSE
  "CMakeFiles/slm_analysis.dir/analysis.cpp.o"
  "CMakeFiles/slm_analysis.dir/analysis.cpp.o.d"
  "libslm_analysis.a"
  "libslm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
