file(REMOVE_RECURSE
  "CMakeFiles/slm_arch.dir/arch.cpp.o"
  "CMakeFiles/slm_arch.dir/arch.cpp.o.d"
  "CMakeFiles/slm_arch.dir/fig3.cpp.o"
  "CMakeFiles/slm_arch.dir/fig3.cpp.o.d"
  "CMakeFiles/slm_arch.dir/tlm.cpp.o"
  "CMakeFiles/slm_arch.dir/tlm.cpp.o.d"
  "libslm_arch.a"
  "libslm_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
