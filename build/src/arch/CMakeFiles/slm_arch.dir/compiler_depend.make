# Empty compiler generated dependencies file for slm_arch.
# This may be replaced when dependencies are built.
