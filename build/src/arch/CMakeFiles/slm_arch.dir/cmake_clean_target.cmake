file(REMOVE_RECURSE
  "libslm_arch.a"
)
