# Empty dependencies file for slm_trace.
# This may be replaced when dependencies are built.
