file(REMOVE_RECURSE
  "CMakeFiles/slm_trace.dir/trace.cpp.o"
  "CMakeFiles/slm_trace.dir/trace.cpp.o.d"
  "libslm_trace.a"
  "libslm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
