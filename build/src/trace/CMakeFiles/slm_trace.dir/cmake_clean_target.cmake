file(REMOVE_RECURSE
  "libslm_trace.a"
)
