file(REMOVE_RECURSE
  "CMakeFiles/slm_rtos.dir/rtos.cpp.o"
  "CMakeFiles/slm_rtos.dir/rtos.cpp.o.d"
  "CMakeFiles/slm_rtos.dir/scheduler.cpp.o"
  "CMakeFiles/slm_rtos.dir/scheduler.cpp.o.d"
  "libslm_rtos.a"
  "libslm_rtos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
