# Empty compiler generated dependencies file for slm_rtos.
# This may be replaced when dependencies are built.
