file(REMOVE_RECURSE
  "libslm_rtos.a"
)
