# Empty compiler generated dependencies file for slm_sim.
# This may be replaced when dependencies are built.
