file(REMOVE_RECURSE
  "libslm_sim.a"
)
