file(REMOVE_RECURSE
  "CMakeFiles/slm_sim.dir/kernel.cpp.o"
  "CMakeFiles/slm_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/slm_sim.dir/time.cpp.o"
  "CMakeFiles/slm_sim.dir/time.cpp.o.d"
  "libslm_sim.a"
  "libslm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
