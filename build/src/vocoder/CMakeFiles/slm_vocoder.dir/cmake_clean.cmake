file(REMOVE_RECURSE
  "CMakeFiles/slm_vocoder.dir/codec.cpp.o"
  "CMakeFiles/slm_vocoder.dir/codec.cpp.o.d"
  "CMakeFiles/slm_vocoder.dir/iss_gen.cpp.o"
  "CMakeFiles/slm_vocoder.dir/iss_gen.cpp.o.d"
  "CMakeFiles/slm_vocoder.dir/models.cpp.o"
  "CMakeFiles/slm_vocoder.dir/models.cpp.o.d"
  "libslm_vocoder.a"
  "libslm_vocoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_vocoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
