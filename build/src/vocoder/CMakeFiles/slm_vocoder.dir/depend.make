# Empty dependencies file for slm_vocoder.
# This may be replaced when dependencies are built.
