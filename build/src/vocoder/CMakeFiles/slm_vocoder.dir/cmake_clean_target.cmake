file(REMOVE_RECURSE
  "libslm_vocoder.a"
)
