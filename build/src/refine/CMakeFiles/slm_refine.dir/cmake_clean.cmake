file(REMOVE_RECURSE
  "CMakeFiles/slm_refine.dir/lexer.cpp.o"
  "CMakeFiles/slm_refine.dir/lexer.cpp.o.d"
  "CMakeFiles/slm_refine.dir/refiner.cpp.o"
  "CMakeFiles/slm_refine.dir/refiner.cpp.o.d"
  "libslm_refine.a"
  "libslm_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slm_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
