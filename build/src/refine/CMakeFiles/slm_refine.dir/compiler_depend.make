# Empty compiler generated dependencies file for slm_refine.
# This may be replaced when dependencies are built.
