file(REMOVE_RECURSE
  "libslm_refine.a"
)
